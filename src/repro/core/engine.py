"""The composable search engine: loop kernel, run state, checkpoint/resume.

:class:`SearchDriver` is the policy-free kernel every search strategy in this
repository runs on — ``HyperMapper`` (Algorithm 1) as well as all the
baselines in :mod:`repro.core.baselines`.  It owns the mechanics the paper's
infrastructure section describes around the algorithm:

* the bootstrap phase (random samples or an explicit initial design),
* the one-time construction of the encoded configuration pool,
* dispatching evaluation batches through an
  :class:`~repro.core.executor.EvaluationExecutor` (serial, async, or async
  with *overlap*: the surrogate refits while stragglers of the previous
  batch are still running, mirroring how runs farmed out to a board fleet
  trickle back),
* history/rank bookkeeping (membership tests are integer pool-rank lookups,
  not configuration-list scans),
* per-iteration reports, and
* **checkpoint/resume**: a serializable :class:`RunState` written at
  iteration boundaries from which a killed run resumes bit-identically.

What to evaluate next is delegated to an
:class:`~repro.core.acquisition.AcquisitionStrategy`.  With the default
:class:`~repro.core.acquisition.PredictedPareto` strategy and a serial
executor the driver reproduces the original ``HyperMapper.run`` loop
bit-for-bit.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.acquisition import AcquisitionStrategy, Proposal
from repro.core.durable import atomic_write_json
from repro.core.evaluator import EvaluationFunction, Evaluator
from repro.core.executor import EvalFuture, EvaluationExecutor, as_executor
from repro.core.history import EvaluationRecord, History
from repro.core.objectives import ObjectiveSet
from repro.core.pareto import hypervolume_2d
from repro.core.sampling import EncodedPool, RandomSampler, Sampler, build_encoded_pool
from repro.core.space import Configuration, DesignSpace
from repro.core.surrogate import MultiObjectiveSurrogate
from repro.utils.rng import RandomState, as_generator, derive_seed
from repro.utils.serialization import load_json
from repro.utils.timing import Timer

#: Schema version of serialized checkpoints.
CHECKPOINT_VERSION = 1

#: Environment knob: set to ``1`` to stamp per-iteration timing counters
#: (fit/predict/bitset/encode wall milliseconds) onto history records.  Off by
#: default so artifacts stay byte-identical to earlier releases.
RECORD_TIMING_ENV = "REPRO_RECORD_TIMING"


def record_timing_enabled() -> bool:
    """Whether history records should carry per-iteration timing counters."""
    return os.environ.get(RECORD_TIMING_ENV, "").strip().lower() in {"1", "true", "yes", "on"}


class SearchPreempted(RuntimeError):
    """The run was parked at an iteration boundary by its ``stop_requested`` hook.

    Raised *after* a resumable checkpoint has been written (when the driver
    has a ``checkpoint_path``), so the caller can resume the run later —
    bit-identically — through the normal ``resume_from`` path.  This is the
    cheap-preemption primitive the live optimization service uses to park a
    lower-priority study while a higher-priority submission takes its slot.
    """

    def __init__(self, reason: str = "preempted", iteration: int = 0) -> None:
        self.reason = reason
        self.iteration = iteration
        super().__init__(f"search parked at iteration boundary {iteration} ({reason})")


@dataclass
class ActiveLearningReport:
    """Per-iteration statistics of the search loop."""

    iteration: int
    n_predicted_pareto: int
    n_new_samples: int
    n_evaluations_total: int
    n_feasible_total: int
    n_pareto_total: int
    hypervolume: float
    surrogate_fit_seconds: float

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict representation."""
        return {
            "iteration": self.iteration,
            "n_predicted_pareto": self.n_predicted_pareto,
            "n_new_samples": self.n_new_samples,
            "n_evaluations_total": self.n_evaluations_total,
            "n_feasible_total": self.n_feasible_total,
            "n_pareto_total": self.n_pareto_total,
            "hypervolume": self.hypervolume,
            "surrogate_fit_seconds": self.surrogate_fit_seconds,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, float]) -> "ActiveLearningReport":
        """Inverse of :meth:`to_dict` (checkpoint restore)."""
        return cls(
            iteration=int(d["iteration"]),
            n_predicted_pareto=int(d["n_predicted_pareto"]),
            n_new_samples=int(d["n_new_samples"]),
            n_evaluations_total=int(d["n_evaluations_total"]),
            n_feasible_total=int(d["n_feasible_total"]),
            n_pareto_total=int(d["n_pareto_total"]),
            hypervolume=float(d["hypervolume"]),
            surrogate_fit_seconds=float(d["surrogate_fit_seconds"]),
        )


@dataclass
class HyperMapperResult:
    """Outcome of a search-engine run."""

    space: DesignSpace
    objectives: ObjectiveSet
    history: History
    pareto: List[EvaluationRecord]
    iterations: List[ActiveLearningReport]
    surrogate: Optional[MultiObjectiveSurrogate]

    def pareto_matrix(self) -> np.ndarray:
        """Objective matrix (natural units) of the final Pareto front."""
        if not self.pareto:
            return np.empty((0, len(self.objectives)))
        return np.array([r.objective_values(self.objectives) for r in self.pareto], dtype=np.float64)

    def best_by(self, objective_name: str) -> Optional[EvaluationRecord]:
        """Pareto record optimizing one objective."""
        if not self.pareto:
            return None
        obj = self.objectives[objective_name]
        return min(self.pareto, key=lambda r: obj.canonical(float(r.metrics[objective_name])))

    def hypervolume(self, reference: Sequence[float]) -> float:
        """Hypervolume of the final front w.r.t. a reference point (2 objectives)."""
        front = self.objectives.to_canonical(self.pareto_matrix())
        ref = self.objectives.to_canonical(np.asarray(reference, dtype=float).reshape(1, -1))[0]
        return hypervolume_2d(front, ref)

    def summary(self) -> Dict[str, object]:
        """Compact run summary."""
        s = self.history.summary()
        s["n_active_learning_iterations"] = len(self.iterations)
        s["n_pareto_final"] = len(self.pareto)
        return s


def _config_from_dict(space: DesignSpace, d: Mapping[str, object]) -> Configuration:
    """Revive a checkpointed configuration, validating against the space.

    Falls back to a raw (unvalidated) configuration for values outside the
    space's domains — e.g. a warm-start history imported from another space
    variant.
    """
    try:
        return space.configuration(d)
    except (KeyError, ValueError):
        return Configuration.from_dict(d, order=list(d.keys()))


@dataclass
class SearchState:
    """Mutable per-run state shared between the driver and its strategy."""

    space: DesignSpace
    objectives: ObjectiveSet
    history: History
    rng: np.random.Generator
    timer: Timer
    encoded_pool: Optional[EncodedPool] = None
    max_samples_per_iteration: Optional[int] = None
    iteration: int = 0
    surrogate: Optional[MultiObjectiveSurrogate] = None
    #: Pool ranks of evaluated plus currently in-flight configurations —
    #: exactly what acquisition must not re-propose.
    claimed_ranks: set = field(default_factory=set)
    #: Every evaluated configuration (including out-of-pool warm-start entries).
    evaluated_configs: set = field(default_factory=set)
    #: Factory for fresh per-iteration surrogates (bound by the driver).
    surrogate_factory: Optional[Callable[[int], MultiObjectiveSurrogate]] = None

    def new_surrogate(self) -> MultiObjectiveSurrogate:
        """A fresh surrogate for the current iteration (deterministic seed)."""
        assert self.surrogate_factory is not None
        surrogate = self.surrogate_factory(self.iteration)
        self.surrogate = surrogate
        return surrogate

    def register(self, record: EvaluationRecord) -> None:
        """Track a newly added history record in the membership indexes."""
        self.evaluated_configs.add(record.config)
        if self.encoded_pool is not None:
            rank = self.encoded_pool.position(record.config)
            if rank is not None:
                self.claimed_ranks.add(rank)

    def claim(self, config: Configuration, rank: Optional[int] = None) -> None:
        """Mark an in-flight configuration so acquisition will not re-propose it."""
        if self.encoded_pool is None:
            return
        if rank is None:
            rank = self.encoded_pool.position(config)
        if rank is not None:
            self.claimed_ranks.add(rank)


@dataclass
class _PendingEvaluation:
    """A submitted evaluation whose result has not been folded into history."""

    future: EvalFuture
    config: Configuration
    source: str
    iteration: int


class SearchDriver:
    """Policy-free search loop kernel.

    Parameters
    ----------
    space, objectives:
        The problem definition.
    executor:
        An :class:`~repro.core.executor.EvaluationExecutor`, or anything
        :func:`~repro.core.executor.as_executor` accepts (an evaluator or a
        plain callable, wrapped serially).
    acquisition:
        The proposal policy.  ``None`` runs only the bootstrap phase (pure
        random/grid designs).
    n_random_samples / initial_configs:
        Bootstrap: either ``n_random_samples`` draws from ``sampler`` or an
        explicit configuration list.  ``bootstrap_source`` labels the records.
    max_iterations:
        Iteration cap; ``None`` loops until the strategy stops proposing.
    pool_size:
        Encoded-pool size for pool-based strategies (see
        :func:`~repro.core.sampling.build_encoded_pool`).
    max_samples_per_iteration:
        Cap on new evaluations per iteration (enforced by the strategy).
    overlap_fraction:
        ``None`` gathers every batch completely before the next refit (the
        paper's serial semantics — bit-identical regardless of worker
        count).  A fraction ``f`` in ``(0, 1]`` blocks only on the first
        ``ceil(f * batch)`` evaluations (in submission order); the stragglers
        keep running while the surrogate refits and are folded into the
        history right after the next proposal.  Deterministic by
        construction: the cut is positional, never timing-based.
    checkpoint_path / checkpoint_every:
        When set, a resumable :class:`RunState` is written after the
        bootstrap and after every ``checkpoint_every``-th iteration.
    stop_requested:
        Optional zero-argument callable polled at every iteration boundary.
        When it returns true the driver writes a resumable checkpoint and
        raises :class:`SearchPreempted` — cooperative preemption for the
        live service (a parked run resumes bit-identically via
        ``run(resume_from=...)``).  Purely-bootstrap searches (no
        active-learning loop) have no boundaries and run to completion.
    seed / rng_label:
        Master seed; the run stream is ``derive_seed(seed, rng_label)``.
    """

    def __init__(
        self,
        space: DesignSpace,
        objectives: ObjectiveSet,
        executor: Union[EvaluationExecutor, Evaluator, EvaluationFunction],
        acquisition: Optional[AcquisitionStrategy] = None,
        *,
        n_random_samples: int = 0,
        initial_configs: Optional[Sequence[Configuration]] = None,
        bootstrap_source: str = "random",
        max_iterations: Optional[int] = None,
        pool_size: Optional[int] = 20_000,
        max_samples_per_iteration: Optional[int] = None,
        sampler: Optional[Sampler] = None,
        surrogate_kwargs: Optional[Mapping[str, object]] = None,
        overlap_fraction: Optional[float] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 1,
        compute_reports: bool = True,
        record_sink: Optional[Callable[[EvaluationRecord], None]] = None,
        stop_requested: Optional[Callable[[], bool]] = None,
        seed: RandomState = None,
        rng_label: str = "search",
    ) -> None:
        self.space = space
        self.objectives = objectives
        self.executor = as_executor(executor, objectives)
        self.acquisition = acquisition
        self.n_random_samples = int(n_random_samples)
        self.initial_configs = list(initial_configs) if initial_configs is not None else None
        self.bootstrap_source = bootstrap_source
        self.max_iterations = max_iterations
        self.pool_size = pool_size
        self.max_samples_per_iteration = max_samples_per_iteration
        self.sampler = sampler or RandomSampler(space)
        self.surrogate_kwargs = dict(surrogate_kwargs or {})
        if overlap_fraction is not None:
            if not 0.0 < overlap_fraction <= 1.0:
                raise ValueError("overlap_fraction must be in (0, 1]")
            if acquisition is not None and not acquisition.supports_overlap:
                raise ValueError(
                    f"acquisition {type(acquisition).__name__} does not support overlapped gathering"
                )
        self.overlap_fraction = overlap_fraction
        if checkpoint_path is not None and acquisition is not None and not acquisition.supports_checkpoint:
            raise ValueError(
                f"acquisition {type(acquisition).__name__} does not support checkpointing"
            )
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = max(int(checkpoint_every), 1)
        self.compute_reports = bool(compute_reports)
        #: Called with every record this run appends to its history (streamed
        #: persistence, e.g. a study's ``history.jsonl``).  Restored
        #: checkpoint records and warm-start histories are *not* re-emitted.
        self.record_sink = record_sink
        #: Cooperative-preemption poll (see the class docstring).
        self.stop_requested = stop_requested
        self.seed = seed
        self.rng_label = rng_label
        # Checkpoint-compatibility fingerprint.  Only deterministic seed
        # types participate: deriving from a Generator seed would consume
        # from it (and such runs are not reproducible to begin with).
        if seed is None or isinstance(seed, (int, np.integer)):
            self._seed_fingerprint: Optional[int] = derive_seed(seed, rng_label)
        else:
            self._seed_fingerprint = None

    # -- surrogate factory ---------------------------------------------------------
    def _make_surrogate(self, iteration: int) -> MultiObjectiveSurrogate:
        kwargs = dict(self.surrogate_kwargs)
        kwargs.setdefault("n_estimators", 32)
        kwargs.setdefault("min_samples_leaf", 2)
        return MultiObjectiveSurrogate(
            self.space,
            self.objectives,
            random_state=derive_seed(self.seed, "surrogate", iteration),
            **kwargs,
        )

    # -- main entry point --------------------------------------------------------
    def run(
        self,
        initial_history: Optional[History] = None,
        resume_from: Optional[str] = None,
    ) -> HyperMapperResult:
        """Execute the search (fresh, or resumed from a checkpoint file)."""
        if resume_from is not None:
            if initial_history is not None:
                raise ValueError(
                    "initial_history and resume_from are mutually exclusive: the "
                    "checkpoint already contains the run's full history"
                )
            return self._run_resumed(resume_from)

        rng = as_generator(derive_seed(self.seed, self.rng_label))
        history = History(self.objectives)
        if initial_history is not None:
            history.extend(initial_history.records)
        timer = Timer()
        reports: List[ActiveLearningReport] = []

        # --- Phase 1: bootstrap -------------------------------------------------
        if self.initial_configs is not None:
            boot_configs = list(self.initial_configs)
        else:
            n_needed = max(self.n_random_samples - len(history), 0)
            boot_configs = self.sampler.sample(n_needed, rng=rng) if n_needed > 0 else []
        budget_stop = False
        if boot_configs:
            futures, accepted = self.executor.submit(boot_configs)
            metrics = self.executor.gather(futures)
            for f, (c, m) in zip(futures, zip(boot_configs[:accepted], metrics)):
                self._emit(history.add(c, m, source=self.bootstrap_source, iteration=0, attempts=f.attempts))
            budget_stop = accepted < len(boot_configs)

        # --- Phase 2: configuration pool ----------------------------------------
        # The pool is static for the whole run: encoded exactly once here,
        # fitted-from and predicted-over every iteration.  The rng state and
        # include list are snapshotted first so a resumed run rebuilds the
        # exact same pool.
        pool_rng_state = rng.bit_generator.state
        pool_include: List[Configuration] = []
        encoded_pool: Optional[EncodedPool] = None
        if self.acquisition is not None and self.acquisition.needs_pool:
            evaluated = history.configuration_set()
            pool_include = list(evaluated) + [self.space.default_configuration()]
            encoded_pool = build_encoded_pool(
                self.space, self.pool_size, rng=rng, include=pool_include
            )

        state = self._make_state(rng, history, timer, encoded_pool)
        if self.acquisition is not None:
            self.acquisition.reset(state)
        reference = self._hypervolume_reference(history)
        self._save_checkpoint(
            state, reports, [], pool_rng_state, pool_include, 0, budget_stop, reference
        )

        return self._loop(
            state,
            reports,
            reference,
            pending=[],
            pool_rng_state=pool_rng_state,
            pool_include=pool_include,
            start_iteration=1,
            budget_stop=budget_stop,
        )

    # -- the loop kernel -----------------------------------------------------------
    def _loop(
        self,
        state: SearchState,
        reports: List[ActiveLearningReport],
        reference: Optional[np.ndarray],
        pending: List[_PendingEvaluation],
        pool_rng_state: Optional[dict],
        pool_include: List[Configuration],
        start_iteration: int,
        budget_stop: bool,
        converged: bool = False,
    ) -> HyperMapperResult:
        acquisition = self.acquisition
        record_timing = record_timing_enabled()
        iteration = start_iteration - 1
        while acquisition is not None and not budget_stop and not converged:
            if self.stop_requested is not None and self.stop_requested():
                # Park at the iteration boundary: the checkpoint written here
                # is byte-equivalent to the last end-of-iteration checkpoint
                # (nothing has mutated since), so resuming it continues the
                # run bit-identically — the same invariant the kill/resume
                # tests pin, minus the torn tail.
                self._save_checkpoint(
                    state, reports, pending, pool_rng_state, pool_include,
                    iteration, budget_stop, reference,
                )
                raise SearchPreempted("stop requested", iteration)
            iteration += 1
            if self.max_iterations is not None and iteration > self.max_iterations:
                break
            state.iteration = iteration
            pool = state.encoded_pool
            kernel_before = pool.bitset_kernel_seconds if pool is not None else 0.0
            proposal = acquisition.propose(state)
            timing = None
            if record_timing:
                kernel_after = pool.bitset_kernel_seconds if pool is not None else 0.0
                timing = {
                    "fit_ms": state.timer.last("fit") * 1e3,
                    "predict_ms": state.timer.last("predict") * 1e3,
                    "bitset_ms": (kernel_after - kernel_before) * 1e3,
                    "encode_ms": state.timer.last("encode") * 1e3,
                }
            # Stragglers from the previous batch ran concurrently with the
            # refit above; fold them into the history now.
            n_drained = self._drain_pending(state, pending)
            if proposal is None:
                break
            if not proposal.configs:
                converged = True
                self._append_report(
                    reports, iteration, proposal.n_candidates, n_drained, state, reference
                )
                # The convergence flag makes the checkpoint terminal: a
                # resumed run must not re-open the search with a fresh
                # surrogate the original run never fitted.
                self._save_checkpoint(
                    state, reports, pending, pool_rng_state, pool_include, iteration,
                    budget_stop, reference, converged=True,
                )
                break
            configs = proposal.configs
            source = proposal.source
            iter_tag = proposal.iteration if proposal.iteration is not None else iteration
            futures, accepted = self.executor.submit(configs)
            if accepted < len(configs):
                budget_stop = True
            ranks = proposal.pool_ranks
            for j, (f, c) in enumerate(zip(futures, configs)):
                state.claim(c, ranks[j] if ranks is not None and j < len(ranks) else None)
            n_wait = accepted
            if self.overlap_fraction is not None and accepted > 0:
                n_wait = min(max(int(math.ceil(self.overlap_fraction * accepted)), 1), accepted)
            results = self.executor.gather(futures, count=n_wait)
            new_records: List[EvaluationRecord] = []
            for f, (c, m) in zip(futures, zip(configs[:n_wait], results)):
                record = state.history.add(
                    c, m, source=source, iteration=iter_tag, attempts=f.attempts, timing=timing
                )
                state.register(record)
                self._emit(record)
                new_records.append(record)
            for f, c in zip(futures[n_wait:accepted], configs[n_wait:accepted]):
                pending.append(_PendingEvaluation(f, c, source, iter_tag))
            if new_records:
                # An empty accepted prefix only happens on budget exhaustion;
                # the loop ends right after, so strategies never see it.
                acquisition.observe(state, new_records)
            # n_new counts what actually entered the history this iteration
            # (drained stragglers + the gathered prefix), so consecutive
            # reports' n_evaluations_total deltas always match it.
            self._append_report(
                reports,
                iteration,
                proposal.n_candidates,
                n_drained + len(new_records),
                state,
                reference,
            )
            if iteration % self.checkpoint_every == 0 or budget_stop:
                self._save_checkpoint(
                    state, reports, pending, pool_rng_state, pool_include, iteration, budget_stop, reference
                )
        self._drain_pending(state, pending)
        if budget_stop:
            # Budget exhausted for good: make the final history durable.  On
            # normal completion the last iteration-boundary checkpoint (with
            # its recorded in-flight batch) stays the resume point — a
            # post-drain snapshot would let a resumed refit see straggler
            # results earlier than the uninterrupted run did.
            self._save_checkpoint(
                state, reports, [], pool_rng_state, pool_include, iteration, budget_stop, reference
            )

        pareto = state.history.pareto_records(feasible_only=True)
        return HyperMapperResult(
            space=self.space,
            objectives=self.objectives,
            history=state.history,
            pareto=pareto,
            iterations=reports,
            surrogate=state.surrogate,
        )

    def _drain_pending(self, state: SearchState, pending: List[_PendingEvaluation]) -> int:
        """Fold every pending straggler into the history (submission order)."""
        if not pending:
            return 0
        self.executor.gather([p.future for p in pending])
        for p in pending:
            record = state.history.add(p.config, p.future.result(), source=p.source, iteration=p.iteration, attempts=p.future.attempts)
            state.register(record)
            self._emit(record)
        n_drained = len(pending)
        pending.clear()
        return n_drained

    def _emit(self, record: EvaluationRecord) -> None:
        """Stream a freshly appended history record to the sink (if any)."""
        if self.record_sink is not None:
            self.record_sink(record)

    # -- state construction ---------------------------------------------------------
    def _make_state(
        self,
        rng: np.random.Generator,
        history: History,
        timer: Timer,
        encoded_pool: Optional[EncodedPool],
    ) -> SearchState:
        state = SearchState(
            space=self.space,
            objectives=self.objectives,
            history=history,
            rng=rng,
            timer=timer,
            encoded_pool=encoded_pool,
            max_samples_per_iteration=self.max_samples_per_iteration,
            surrogate_factory=self._make_surrogate,
        )
        for record in history.records:
            state.register(record)
        return state

    # -- reporting ------------------------------------------------------------
    def _hypervolume_reference(self, history: History) -> Optional[np.ndarray]:
        if len(self.objectives) != 2 or len(history) == 0:
            return None
        values = history.objective_matrix(canonical=True)
        # A reference slightly worse than the worst observed point.
        return values.max(axis=0) * 1.1 + 1e-9

    def _append_report(
        self,
        reports: List[ActiveLearningReport],
        iteration: int,
        n_predicted: int,
        n_new: int,
        state: SearchState,
        reference: Optional[np.ndarray],
    ) -> None:
        if not self.compute_reports:
            return
        history = state.history
        pareto = history.pareto_records(feasible_only=True)
        hv = float("nan")
        if reference is not None and pareto:
            front = history.objectives.to_canonical(
                np.array([r.objective_values(history.objectives) for r in pareto])
            )
            hv = hypervolume_2d(front, reference)
        reports.append(
            ActiveLearningReport(
                iteration=iteration,
                n_predicted_pareto=n_predicted,
                n_new_samples=n_new,
                n_evaluations_total=len(history),
                n_feasible_total=history.n_feasible(),
                n_pareto_total=len(pareto),
                hypervolume=hv,
                # The *last* fit lap: this iteration's own refit duration
                # (the seed code reported the running mean by mistake).
                surrogate_fit_seconds=state.timer.last("fit"),
            )
        )

    # -- checkpointing ------------------------------------------------------------
    def _save_checkpoint(
        self,
        state: SearchState,
        reports: List[ActiveLearningReport],
        pending: List[_PendingEvaluation],
        pool_rng_state: Optional[dict],
        pool_include: List[Configuration],
        iteration: int,
        budget_stop: bool,
        reference: Optional[np.ndarray] = None,
        converged: bool = False,
    ) -> None:
        if self.checkpoint_path is None:
            return
        n_pending_fresh = sum(1 for p in pending if p.future.fresh)
        payload = {
            "version": CHECKPOINT_VERSION,
            "rng_label": self.rng_label,
            "seed_fingerprint": self._seed_fingerprint,
            "iteration": iteration,
            "rng_state": state.rng.bit_generator.state,
            "pool_rng_state": pool_rng_state,
            "pool_include": [dict(c) for c in pool_include],
            "history": state.history.to_dicts(),
            "reports": [r.to_dict() for r in reports],
            "pending": [
                {"config": dict(p.config), "source": p.source, "iteration": p.iteration}
                for p in pending
            ],
            # Budget units the resumed executor must start from; pending
            # evaluations are *not* counted here — they are resubmitted (and
            # re-counted) on resume.
            "budget_used": self.executor.n_evaluations - n_pending_fresh,
            "budget_stop": bool(budget_stop),
            "converged": bool(converged),
            # The hypervolume reference is fixed right after bootstrap; a
            # resumed run must reuse it, not re-derive it from a longer
            # history.
            "hypervolume_reference": None if reference is None else [float(x) for x in reference],
            "strategy": self.acquisition.state_dict() if self.acquisition is not None else {},
        }
        # Atomic + fsync'd: a kill (or power cut) mid-checkpoint leaves the
        # previous checkpoint intact, never a torn one.
        atomic_write_json(self.checkpoint_path, payload)

    def _run_resumed(self, path: str) -> HyperMapperResult:
        data = load_json(path)
        version = int(data.get("version", -1))
        if version != CHECKPOINT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version} in {path!r}")
        # A checkpoint resumed by a differently-configured driver would not
        # diverge loudly — the rng streams and surrogate seeds simply come
        # out different — so compatibility is checked up front.
        if data.get("rng_label") != self.rng_label:
            raise ValueError(
                f"checkpoint {path!r} was written by a {data.get('rng_label')!r} run, "
                f"cannot resume it with a {self.rng_label!r} driver"
            )
        saved_fingerprint = data.get("seed_fingerprint")
        if (
            saved_fingerprint is not None
            and self._seed_fingerprint is not None
            and int(saved_fingerprint) != self._seed_fingerprint
        ):
            raise ValueError(
                f"checkpoint {path!r} was written under a different master seed"
            )

        rng = np.random.default_rng()
        rng.bit_generator.state = data["rng_state"]
        history = History.from_dicts(self.objectives, data["history"], space=self.space)
        timer = Timer()
        reports = [ActiveLearningReport.from_dict(r) for r in data["reports"]]

        pool_rng_state = data.get("pool_rng_state")
        pool_include = [_config_from_dict(self.space, d) for d in data.get("pool_include", [])]
        encoded_pool: Optional[EncodedPool] = None
        if self.acquisition is not None and self.acquisition.needs_pool:
            # Rebuild the pool exactly as the original run did: same rng
            # snapshot, same include list.
            pool_rng = np.random.default_rng()
            if pool_rng_state is not None:
                pool_rng.bit_generator.state = pool_rng_state
            encoded_pool = build_encoded_pool(
                self.space, self.pool_size, rng=pool_rng, include=pool_include
            )

        self.executor.restore_consumed(int(data.get("budget_used", 0)))
        for record in history.records:
            self.executor.prime(record.config, record.metrics)

        state = self._make_state(rng, history, timer, encoded_pool)
        if self.acquisition is not None:
            self.acquisition.reset(state)
            self.acquisition.load_state_dict(data.get("strategy", {}))
        saved_reference = data.get("hypervolume_reference")
        reference = (
            np.asarray(saved_reference, dtype=np.float64)
            if saved_reference is not None
            else self._hypervolume_reference(history)
        )

        # Resubmit evaluations that were in flight when the checkpoint was
        # written (their results never landed).
        pending: List[_PendingEvaluation] = []
        budget_stop = bool(data.get("budget_stop", False))
        converged = bool(data.get("converged", False))
        pending_specs = data.get("pending", [])
        if pending_specs:
            configs = [_config_from_dict(self.space, p["config"]) for p in pending_specs]
            futures, accepted = self.executor.submit(configs)
            if accepted < len(configs):
                budget_stop = True
            for f, c, spec in zip(futures, configs, pending_specs):
                state.claim(c)
                pending.append(_PendingEvaluation(f, c, str(spec["source"]), int(spec["iteration"])))

        return self._loop(
            state,
            reports,
            reference,
            pending=pending,
            pool_rng_state=pool_rng_state,
            pool_include=pool_include,
            start_iteration=int(data["iteration"]) + 1,
            budget_stop=budget_stop,
            converged=converged,
        )


__all__ = [
    "ActiveLearningReport",
    "HyperMapperResult",
    "SearchState",
    "SearchDriver",
    "SearchPreempted",
    "CHECKPOINT_VERSION",
    "RECORD_TIMING_ENV",
    "record_timing_enabled",
]
