"""The live optimization service: an always-on, multi-tenant study queue.

The batch :class:`~repro.core.scheduler.StudyScheduler` runs a *closed* list
of submissions and exits.  :class:`OptimizationService` is the same slot
model opened up into a long-lived queue — the operating mode the paper's
tool actually has (many users submitting design-space studies against one
shared fleet):

* **live submissions** — :meth:`submit` accepts scenarios while studies run;
  the dispatcher blocks on a condition variable when the queue is
  momentarily empty instead of exiting.
* **tenant quotas** — per-tenant caps on concurrently *running* and on
  *waiting* studies, plus per-study worker shares
  (:class:`TenantQuota`).
* **priority admission with preemption** — admission order comes from a
  pluggable schedule policy (default ``"preempting"``: highest priority
  first); when every slot is busy and a strictly higher-priority submission
  waits, the lowest-priority running study is *parked* at its next
  iteration boundary (the engine writes a resumable checkpoint and raises
  :class:`~repro.core.engine.SearchPreempted`) and resumed later
  **bit-identically** — checkpoints make preemption cheap.
* **streaming progress** — :meth:`events` tails the study's streamed
  ``history.jsonl`` (the existing ``record_sink`` artifact) into an ordered
  event feed the HTTP front door (:mod:`repro.core.server`) serves as
  NDJSON.
* **crash-safe state** — every queue transition is appended to a durable
  ``journal.jsonl`` (:class:`~repro.core.durable.JsonlLogger`); a killed
  server restarts, replays the journal, and resumes interrupted studies
  from their run-dir checkpoints.

Studies live one-per-directory under ``<state_dir>/studies/<id>/`` in the
standard versioned run-dir layout, so every existing artifact tool
(``repro report``, ``repro doctor``, ``StudyResult.load``) works on service
runs unchanged.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Union

from repro.core.durable import JsonlLogger, read_jsonl
from repro.core.engine import SearchPreempted
from repro.core.registry import SCHEDULE_POLICY_REGISTRY, registry_snapshot
from repro.core.scenario import Scenario, ScenarioError
from repro.core.scheduler import submission_priority
from repro.core.study import (
    HISTORY_FILE,
    RESUME_TMP_FILE,
    SCENARIO_FILE,
    Study,
    StudyResult,
    run_status,
)

#: Files/dirs inside a service state directory.
JOURNAL_FILE = "journal.jsonl"
STUDIES_DIR = "studies"

#: Study lifecycle states.  ``parking`` is a running study whose stop flag is
#: set (it will park at its next iteration boundary); ``parked`` studies wait
#: in the queue with a resumable checkpoint behind them.
QUEUED = "queued"
RUNNING = "running"
PARKING = "parking"
PARKED = "parked"
COMPLETE = "complete"
DEGRADED = "degraded"
FAILED = "failed"
CANCELED = "canceled"

#: States a study never leaves.
TERMINAL_STATUSES = frozenset({COMPLETE, DEGRADED, FAILED, CANCELED})
#: States in which a study occupies a worker slot.
ACTIVE_STATUSES = frozenset({RUNNING, PARKING})
#: States in which a study waits for a slot (counted against ``max_queued``).
WAITING_STATUSES = frozenset({QUEUED, PARKED})


def status_exit_code(status: str) -> Optional[int]:
    """CLI exit-code equivalent of a study status (see the CLI's table).

    ``0`` for ``complete``, ``1`` for ``degraded``/``failed``/``canceled``
    (the work did not fully succeed), ``None`` while non-terminal.  The HTTP
    layer maps validation errors — the CLI's exit ``2`` — to 422 at
    submission time, so no terminal study status carries a 2.
    """
    if status == COMPLETE:
        return 0
    if status in TERMINAL_STATUSES:
        return 1
    return None


class ServiceError(RuntimeError):
    """Base class for service-level request errors."""


class UnknownStudyError(ServiceError, KeyError):
    """A study id that was never submitted to this service (HTTP 404)."""

    def __init__(self, study_id: str) -> None:
        super().__init__(f"unknown study {study_id!r}")
        self.study_id = study_id

    def __str__(self) -> str:  # KeyError quotes its arg
        return f"unknown study {self.study_id!r}"


class ServiceConflictError(ServiceError):
    """The request conflicts with the study/queue state (HTTP 409)."""


class ServiceUnavailableError(ServiceError):
    """The service is shutting down and not accepting work (HTTP 503)."""


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource limits.

    Attributes
    ----------
    max_running:
        Cap on this tenant's concurrently running (slot-holding) studies;
        ``None`` = only the global slot count limits it.
    max_queued:
        Cap on this tenant's waiting studies (queued + parked); further
        submissions are rejected with :class:`ServiceConflictError` (HTTP
        409).  ``None`` = unbounded queue.
    workers:
        Per-study evaluation-worker cap for this tenant's studies; overrides
        the service-wide fair share.  Worker counts never change a study's
        history — only wall clock — so quotas cannot break bit-identity.
    """

    max_running: Optional[int] = None
    max_queued: Optional[int] = None
    workers: Optional[int] = None

    @classmethod
    def coerce(cls, value: Union["TenantQuota", Mapping[str, Any], None]) -> "TenantQuota":
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        return cls(
            max_running=value.get("max_running"),
            max_queued=value.get("max_queued"),
            workers=value.get("workers"),
        )


def _safe_name(name: str) -> str:
    # Ids become directory names; sanitize wire-supplied scenario names.
    return re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip(".-") or "study"


@dataclass
class StudyEntry:
    """One submission's full service-side state (internal)."""

    id: str
    seq: int
    scenario: Scenario
    tenant: str
    priority: int
    run_dir: Path
    status: str = QUEUED
    error: Optional[str] = None
    #: Times this study was parked by preemption or shutdown.
    preemptions: int = 0
    cancel_requested: bool = False
    stop_event: threading.Event = field(default_factory=threading.Event)
    thread: Optional[threading.Thread] = None
    # Host bindings (in-process submissions only; not journal-recoverable).
    evaluate: Optional[Callable] = None
    runner: Any = None

    def snapshot(self) -> Dict[str, Any]:
        """Public status view (what ``GET /v1/studies/{id}`` returns)."""
        return {
            "id": self.id,
            "name": self.scenario.name,
            "tenant": self.tenant,
            "priority": self.priority,
            "status": self.status,
            "error": self.error,
            "preemptions": self.preemptions,
            "run_dir": str(self.run_dir),
            "exit_code": status_exit_code(self.status),
        }


class OptimizationService:
    """The always-on queue (see the module docstring).

    Parameters
    ----------
    state_dir:
        Durable service state: ``journal.jsonl`` plus one run dir per study
        under ``studies/``.  Reusing a previous state dir replays its
        journal and resumes unfinished studies.
    max_concurrent_studies / worker_budget:
        Slot count and total evaluation-worker budget, exactly as on
        :class:`~repro.core.scheduler.StudyScheduler` (each study's executor
        is capped at the fair share unless its tenant's quota says
        otherwise).
    policy:
        Admission policy name (:data:`SCHEDULE_POLICY_REGISTRY`) or callable;
        default ``"preempting"`` (highest priority first).
    quotas:
        ``{tenant: TenantQuota | dict}``; tenants without an entry get
        ``default_quota`` (unbounded by default).
    preemption:
        When true (default), a waiting submission with strictly higher
        priority parks the lowest-priority running study at its next
        iteration boundary.
    evaluate / runner:
        Service-wide host bindings forwarded to every
        :class:`~repro.core.study.Study` (e.g. one shared simulation-cache
        runner, or the black box for ``{"type": "function"}`` scenarios
        submitted in-process).
    journal_fsync:
        Set false to skip per-event fsync (tests; production keeps it on).
    broker:
        A running :class:`~repro.core.transport.EvaluationBroker` shared by
        every socket-backend study this service runs — the multi-host path:
        one service, one broker, ``repro eval-worker`` fleets on any number
        of machines.  The broker's lifecycle stays with the caller.
    """

    def __init__(
        self,
        state_dir: Union[str, Path],
        *,
        max_concurrent_studies: int = 1,
        worker_budget: Optional[int] = None,
        policy: Union[str, Callable] = "preempting",
        quotas: Optional[Mapping[str, Union[TenantQuota, Mapping[str, Any]]]] = None,
        default_quota: Union[TenantQuota, Mapping[str, Any], None] = None,
        preemption: bool = True,
        evaluate: Optional[Callable] = None,
        runner: Any = None,
        journal_fsync: bool = True,
        broker: Optional[Any] = None,
    ) -> None:
        if int(max_concurrent_studies) < 1:
            raise ValueError("max_concurrent_studies must be >= 1")
        if worker_budget is not None and int(worker_budget) < 1:
            raise ValueError("worker_budget must be >= 1 (or None)")
        self.state_dir = Path(state_dir)
        self.max_concurrent_studies = int(max_concurrent_studies)
        self.worker_budget = None if worker_budget is None else int(worker_budget)
        self.policy = SCHEDULE_POLICY_REGISTRY.get(policy) if isinstance(policy, str) else policy
        self.quotas: Dict[str, TenantQuota] = {
            str(k): TenantQuota.coerce(v) for k, v in (quotas or {}).items()
        }
        self.default_quota = TenantQuota.coerce(default_quota)
        self.preemption = bool(preemption)
        self._evaluate = evaluate
        self._runner = runner
        self._journal_fsync = bool(journal_fsync)
        self._broker = broker

        self._cond = threading.Condition()
        self._entries: Dict[str, StudyEntry] = {}
        self._order: List[str] = []
        self._seq = 0
        self._started_per_tenant: Dict[str, int] = {}
        self._journal: Optional[JsonlLogger] = None
        self._dispatcher: Optional[threading.Thread] = None
        self._started = False
        self._stopping = False
        self._accepting = False

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> "OptimizationService":
        """Replay the journal, requeue unfinished studies, start dispatching.

        Idempotent.  Studies the previous process left ``running`` (killed
        mid-run) come back ``parked``: their run dirs hold resumable
        checkpoints, so the dispatcher resumes them bit-identically.
        """
        with self._cond:
            if self._started:
                return self
            self.state_dir.mkdir(parents=True, exist_ok=True)
            (self.state_dir / STUDIES_DIR).mkdir(exist_ok=True)
            self._replay_journal_locked()
            self._journal = JsonlLogger(
                self.state_dir / JOURNAL_FILE, fsync=self._journal_fsync
            )
            self._started = True
            self._stopping = False
            self._accepting = True
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="repro-service-dispatcher", daemon=True
            )
            self._dispatcher.start()
        return self

    def _replay_journal_locked(self) -> None:
        path = self.state_dir / JOURNAL_FILE
        if not path.exists():
            return
        # A torn final line is exactly what a SIGKILL mid-append leaves;
        # everything before it is complete events.
        for event in read_jsonl(path, tolerate_torn_tail=True):
            kind = event.get("event")
            if kind == "submit":
                entry = StudyEntry(
                    id=str(event["id"]),
                    seq=int(event["seq"]),
                    scenario=Scenario.from_dict(event["scenario"]),
                    tenant=str(event.get("tenant", "default")),
                    priority=int(event.get("priority", 0)),
                    run_dir=self.state_dir / STUDIES_DIR / str(event["id"]),
                )
                self._entries[entry.id] = entry
                self._order.append(entry.id)
                self._seq = max(self._seq, entry.seq + 1)
                continue
            entry = self._entries.get(str(event.get("id", "")))
            if kind == "start" and entry is not None:
                entry.status = RUNNING
                self._started_per_tenant[entry.tenant] = (
                    self._started_per_tenant.get(entry.tenant, 0) + 1
                )
            elif kind == "parked" and entry is not None:
                entry.status = PARKED
                entry.preemptions += 1
            elif kind == "canceled" and entry is not None:
                entry.status = CANCELED
            elif kind == "finished" and entry is not None:
                entry.status = str(event.get("status", FAILED))
                entry.error = event.get("error")
            # "parking" and "shutdown" are transient markers: fold-through.
        for entry in self._entries.values():
            if entry.status in ACTIVE_STATUSES:
                # The previous server died with this study running; its run
                # dir ends at an evaluation boundary (modulo a torn tail the
                # resume path drops) with a checkpoint behind it.
                entry.status = PARKED
                entry.preemptions += 1  # an involuntary park, still counted

    def shutdown(self, park_running: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting work and wind the service down cleanly.

        With ``park_running`` (the default — the SIGTERM path) every running
        study is parked at its next iteration boundary behind a resumable
        checkpoint; otherwise running studies finish naturally.  Queued and
        parked studies stay journaled for the next ``start()``.
        """
        with self._cond:
            if not self._started:
                return
            self._accepting = False
            self._stopping = True
            if park_running:
                for entry in self._entries.values():
                    if entry.status in ACTIVE_STATUSES:
                        entry.stop_event.set()
            self._cond.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=timeout)
        for entry in list(self._entries.values()):
            thread = entry.thread
            if thread is not None and thread.is_alive():
                thread.join(timeout=timeout)
        if self._journal is not None:
            self._journal.append({"event": "shutdown", "t": time.time()})
            self._journal.close()
        with self._cond:
            self._started = False

    def __enter__(self) -> "OptimizationService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- submission API --------------------------------------------------------
    def submit(
        self,
        scenario: Union[Scenario, Mapping[str, Any], str, Path],
        *,
        tenant: str = "default",
        priority: int = 0,
        evaluate: Optional[Callable] = None,
        runner: Any = None,
    ) -> str:
        """Validate and enqueue a scenario; returns the study id.

        Raises :class:`~repro.core.scenario.ScenarioError` (pointer-path
        validation errors — the HTTP layer's 422), :class:`ServiceConflictError`
        when the tenant's ``max_queued`` quota is exhausted (409), and
        :class:`ServiceUnavailableError` during shutdown (503).
        """
        scenario = Scenario.coerce(scenario)  # raises ScenarioError up front
        tenant = str(tenant)
        with self._cond:
            if not self._started or not self._accepting:
                raise ServiceUnavailableError("service is not accepting submissions")
            quota = self.quota_for(tenant)
            if quota.max_queued is not None:
                waiting = sum(
                    1
                    for e in self._entries.values()
                    if e.tenant == tenant and e.status in WAITING_STATUSES
                )
                if waiting >= quota.max_queued:
                    raise ServiceConflictError(
                        f"tenant {tenant!r} queue is full "
                        f"({waiting}/{quota.max_queued} waiting studies)"
                    )
            seq = self._seq
            self._seq += 1
            study_id = f"{seq:06d}-{_safe_name(scenario.name)}"
            entry = StudyEntry(
                id=study_id,
                seq=seq,
                scenario=scenario,
                tenant=tenant,
                priority=int(priority),
                run_dir=self.state_dir / STUDIES_DIR / study_id,
                evaluate=evaluate,
                runner=runner,
            )
            self._entries[study_id] = entry
            self._order.append(study_id)
            assert self._journal is not None
            self._journal.append(
                {
                    "event": "submit",
                    "id": study_id,
                    "seq": seq,
                    "tenant": tenant,
                    "priority": int(priority),
                    "scenario": scenario.to_dict(),
                    "t": time.time(),
                }
            )
            self._cond.notify_all()
        return study_id

    def cancel(self, study_id: str) -> Dict[str, Any]:
        """Cancel a study: immediately when waiting, at the next iteration
        boundary when running.  Terminal studies raise
        :class:`ServiceConflictError` (HTTP 409)."""
        with self._cond:
            entry = self._get_locked(study_id)
            if entry.status in TERMINAL_STATUSES:
                raise ServiceConflictError(
                    f"study {study_id} is already {entry.status}"
                )
            entry.cancel_requested = True
            if entry.status in WAITING_STATUSES:
                entry.status = CANCELED
                assert self._journal is not None
                self._journal.append(
                    {"event": "canceled", "id": study_id, "t": time.time()}
                )
            else:  # running/parking: park at the boundary, then cancel
                entry.stop_event.set()
            self._cond.notify_all()
            return entry.snapshot()

    # -- inspection API --------------------------------------------------------
    def status(self, study_id: str) -> Dict[str, Any]:
        """Public status snapshot of one study."""
        with self._cond:
            return self._get_locked(study_id).snapshot()

    def list_studies(self) -> List[Dict[str, Any]]:
        """Snapshots of every known study, in submission order."""
        with self._cond:
            return [self._entries[sid].snapshot() for sid in self._order]

    def report(self, study_id: str) -> Dict[str, Any]:
        """The persisted report of a finished study (409 otherwise)."""
        with self._cond:
            entry = self._get_locked(study_id)
            status = entry.status
        if status not in (COMPLETE, DEGRADED):
            raise ServiceConflictError(
                f"study {study_id} has no report (status {status!r})"
            )
        return StudyResult.load(entry.run_dir).report()

    def plugins(self) -> Dict[str, List[str]]:
        """Registry snapshot — the exact serializer ``list-plugins --json``
        prints, schedule policies included."""
        return registry_snapshot()

    def health(self) -> Dict[str, Any]:
        """Liveness/queue summary for ``/healthz``."""
        with self._cond:
            counts: Dict[str, int] = {}
            for entry in self._entries.values():
                counts[entry.status] = counts.get(entry.status, 0) + 1
            return {
                "status": "ok" if self._started and self._accepting else "draining",
                "studies": counts,
                "max_concurrent_studies": self.max_concurrent_studies,
                "worker_budget": self.worker_budget,
            }

    def wait(self, study_id: str, timeout: Optional[float] = None) -> str:
        """Block until a study reaches a terminal status; returns it."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            entry = self._get_locked(study_id)
            while entry.status not in TERMINAL_STATUSES:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"study {study_id} still {entry.status} after {timeout}s"
                    )
                self._cond.wait(timeout=remaining if remaining is not None else 1.0)
            return entry.status

    def events(
        self,
        study_id: str,
        *,
        poll_s: float = 0.05,
        timeout: Optional[float] = None,
        follow: bool = True,
    ) -> Iterator[Dict[str, Any]]:
        """Ordered progress events derived from the streamed ``history.jsonl``.

        Yields ``{"event": "record", "index": i, "data": {...}}`` for every
        history record exactly once (across parks and resumes — indices are
        logical history positions), ``{"event": "status", ...}`` on lifecycle
        transitions, and a final ``{"event": "end", "status": ...,
        "exit_code": ...}`` when the study is terminal.  With
        ``follow=False`` the stream stops after the current backlog.
        """
        with self._cond:
            entry = self._get_locked(study_id)
            last_status = entry.status
        yield {"event": "status", "id": study_id, "status": last_status}
        n_emitted = 0
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            # Snapshot the status *before* reading the stream: if it is
            # already terminal the artifacts are final, so the read below
            # cannot miss records emitted after our check.
            with self._cond:
                status = entry.status
            for event in self._new_records(entry, n_emitted):
                n_emitted += 1
                yield event
            if status != last_status:
                last_status = status
                yield {"event": "status", "id": study_id, "status": status}
            if status in TERMINAL_STATUSES:
                yield {
                    "event": "end",
                    "id": study_id,
                    "status": status,
                    "exit_code": status_exit_code(status),
                    "error": entry.error,
                    "n_records": n_emitted,
                }
                return
            if not follow:
                return
            if deadline is not None and time.monotonic() > deadline:
                return
            with self._cond:
                if entry.status == status:
                    self._cond.wait(timeout=poll_s)

    def _new_records(self, entry: StudyEntry, n_emitted: int) -> List[Dict[str, Any]]:
        # A resumed run streams to the .resume-tmp side file (pre-seeded with
        # the checkpoint's history, i.e. >= everything already emitted); a
        # fresh run streams history.jsonl directly.  Reading the whole file
        # and slicing keeps indices stable across parks, resumes, and the
        # final defensive rewrite.
        side = entry.run_dir / RESUME_TMP_FILE
        path = side if side.exists() else entry.run_dir / HISTORY_FILE
        if not path.exists():
            return []
        try:
            records = read_jsonl(path, tolerate_torn_tail=True)
        except (OSError, ValueError):
            return []
        return [
            {"event": "record", "index": n_emitted + i, "data": rec}
            for i, rec in enumerate(records[n_emitted:])
        ]

    # -- internals -------------------------------------------------------------
    def _get_locked(self, study_id: str) -> StudyEntry:
        entry = self._entries.get(str(study_id))
        if entry is None:
            raise UnknownStudyError(str(study_id))
        return entry

    def quota_for(self, tenant: str) -> TenantQuota:
        """The quota governing ``tenant`` (its own, or the default)."""
        return self.quotas.get(str(tenant), self.default_quota)

    @property
    def workers_per_study(self) -> Optional[int]:
        """Service-wide fair-share worker allotment (``None`` = scenario's own)."""
        if self.worker_budget is None:
            return None
        return max(1, self.worker_budget // self.max_concurrent_studies)

    def _allotted(self, scenario: Scenario, tenant: str) -> Scenario:
        quota = self.quota_for(tenant)
        allotment = quota.workers if quota.workers is not None else self.workers_per_study
        if allotment is None:
            return scenario
        executor_spec = scenario.executor_spec
        if executor_spec["n_workers"] == int(allotment):
            return scenario
        executor_spec["n_workers"] = int(allotment)
        # Worker counts never change histories (the PR-3 invariant), so the
        # reallocation affects wall clock only.
        return scenario.replace(executor=executor_spec)

    def _dispatch_loop(self) -> None:
        with self._cond:
            while True:
                self._admit_locked()
                active = any(
                    e.status in ACTIVE_STATUSES for e in self._entries.values()
                )
                if self._stopping and not active:
                    return
                self._cond.wait(timeout=0.2)

    def _tenant_running_locked(self, tenant: str) -> int:
        return sum(
            1
            for e in self._entries.values()
            if e.tenant == tenant and e.status in ACTIVE_STATUSES
        )

    def _candidates_locked(self) -> List[StudyEntry]:
        out = []
        for sid in self._order:
            entry = self._entries[sid]
            if entry.status not in WAITING_STATUSES:
                continue
            quota = self.quota_for(entry.tenant)
            if (
                quota.max_running is not None
                and self._tenant_running_locked(entry.tenant) >= quota.max_running
            ):
                continue
            out.append(entry)
        return out

    def _admit_locked(self) -> None:
        if self._stopping:
            return
        while True:
            n_active = sum(
                1 for e in self._entries.values() if e.status in ACTIVE_STATUSES
            )
            if n_active >= self.max_concurrent_studies:
                break
            candidates = self._candidates_locked()
            if not candidates:
                break
            pick = self.policy(candidates, dict(self._started_per_tenant))
            if not isinstance(pick, int) or not 0 <= pick < len(candidates):
                raise ValueError(
                    f"schedule policy returned invalid index {pick!r} "
                    f"for a queue of {len(candidates)}"
                )
            self._start_locked(candidates[pick])
        if self.preemption:
            self._preempt_locked()

    def _start_locked(self, entry: StudyEntry) -> None:
        entry.status = RUNNING
        entry.stop_event = threading.Event()
        if entry.cancel_requested:  # cancel raced the admission
            entry.stop_event.set()
        self._started_per_tenant[entry.tenant] = (
            self._started_per_tenant.get(entry.tenant, 0) + 1
        )
        assert self._journal is not None
        self._journal.append({"event": "start", "id": entry.id, "t": time.time()})
        entry.thread = threading.Thread(
            target=self._run_entry, args=(entry,), name=f"repro-study-{entry.id}",
            daemon=True,
        )
        entry.thread.start()

    def _preempt_locked(self) -> None:
        """Park the lowest-priority running study for a strictly
        higher-priority waiting one (at most one victim per pass — the
        dispatcher re-evaluates as soon as the slot frees)."""
        candidates = self._candidates_locked()
        if not candidates:
            return
        n_active = sum(1 for e in self._entries.values() if e.status in ACTIVE_STATUSES)
        if n_active < self.max_concurrent_studies:
            return  # a slot is free; plain admission handles it
        best_waiting = max(submission_priority(e) for e in candidates)
        victims = [
            e
            for e in self._entries.values()
            if e.status == RUNNING and submission_priority(e) < best_waiting
        ]
        if not victims:
            return
        # Lowest priority first; among equals the most recently admitted
        # (highest seq) is parked — it has the least sunk work.
        victim = min(victims, key=lambda e: (submission_priority(e), -e.seq))
        victim.status = PARKING
        victim.stop_event.set()
        assert self._journal is not None
        self._journal.append(
            {"event": "parking", "id": victim.id, "reason": "preempted", "t": time.time()}
        )

    def _run_entry(self, entry: StudyEntry) -> None:
        evaluate = entry.evaluate if entry.evaluate is not None else self._evaluate
        runner = entry.runner if entry.runner is not None else self._runner
        status: str
        error: Optional[str] = None
        try:
            stop = entry.stop_event.is_set
            if (entry.run_dir / SCENARIO_FILE).exists():
                # A parked (or journal-recovered) study: resume its run dir.
                persisted = run_status(entry.run_dir)
                if persisted in (COMPLETE, DEGRADED):
                    # The run finished but the journal missed the event
                    # (killed between finalize and append): reload, don't
                    # re-run.
                    result = StudyResult.load(entry.run_dir)
                else:
                    result = Study.resume(
                        entry.run_dir,
                        evaluate=evaluate,
                        runner=runner,
                        broker=self._broker,
                        stop_requested=stop,
                    )
            else:
                scenario = self._allotted(entry.scenario, entry.tenant)
                result = Study(scenario, evaluate=evaluate, runner=runner, broker=self._broker).run(
                    run_dir=entry.run_dir, stop_requested=stop
                )
            status = DEGRADED if result.is_degraded else COMPLETE
        except SearchPreempted:
            status = CANCELED if entry.cancel_requested else PARKED
        except ScenarioError as exc:
            status, error = FAILED, f"invalid scenario: {exc}"
        except Exception as exc:  # noqa: BLE001 — crash isolation is the contract
            status, error = FAILED, f"{type(exc).__name__}: {exc}"
        with self._cond:
            entry.status = status
            entry.error = error
            entry.thread = None
            assert self._journal is not None
            if status == PARKED:
                entry.preemptions += 1
                self._journal.append({"event": "parked", "id": entry.id, "t": time.time()})
            elif status == CANCELED:
                self._journal.append({"event": "canceled", "id": entry.id, "t": time.time()})
            else:
                self._journal.append(
                    {
                        "event": "finished",
                        "id": entry.id,
                        "status": status,
                        "error": error,
                        "t": time.time(),
                    }
                )
            self._cond.notify_all()


__all__ = [
    "JOURNAL_FILE",
    "STUDIES_DIR",
    "TERMINAL_STATUSES",
    "ACTIVE_STATUSES",
    "WAITING_STATUSES",
    "status_exit_code",
    "ServiceError",
    "UnknownStudyError",
    "ServiceConflictError",
    "ServiceUnavailableError",
    "TenantQuota",
    "StudyEntry",
    "OptimizationService",
]
