"""Pluggable acquisition strategies for the search engine.

An :class:`AcquisitionStrategy` decides which configurations the driver
evaluates next.  The engine kernel (:mod:`repro.core.engine`) is policy-free:
it owns the history, the executor and the checkpointing; the strategy owns
*what to try*.

Strategies provided here:

* :class:`PredictedPareto` — the paper's Algorithm 1: fit one forest per
  objective, predict over the whole pool, propose the predicted-Pareto set.
  Bit-identical to the pre-engine ``HyperMapper.run`` loop.
* :class:`UncertaintyWeighted` — optimistic lower-confidence-bound variant:
  the front is computed on ``mean - beta * std`` (canonical units) using the
  forests' across-tree spread, so the search is drawn toward regions the
  surrogate is unsure about.
* :class:`EpsilonGreedy` — explores: a fraction ``epsilon`` of every batch is
  replaced by uniformly random unevaluated pool members.

Model-based strategies work on *pool ranks* (row indices of the encoded
pool), not configuration objects: membership tests are integer-set lookups
against the ranks the engine has already claimed, and only the finally
selected candidates are materialized into
:class:`~repro.core.space.Configuration` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.core.pareto import pareto_mask
from repro.core.registry import ACQUISITION_REGISTRY, UnknownPluginError, register_acquisition
from repro.core.space import Configuration

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import SearchState


@dataclass
class Proposal:
    """One batch of configurations proposed by a strategy.

    Attributes
    ----------
    configs:
        The configurations to evaluate (in order).  Empty means "converged".
    n_candidates:
        Size of the candidate set before dedup/capping (the predicted-Pareto
        front size for model-based strategies); feeds the per-iteration
        report.
    source:
        Provenance label stamped on the history records.
    iteration:
        Optional override of the history iteration tag (strategies with their
        own generation counters use it); defaults to the driver's iteration.
    pool_ranks:
        Pool row indices of ``configs`` (when known), so the driver can mark
        in-flight claims without hashing configurations.
    """

    configs: List[Configuration]
    n_candidates: int = 0
    source: str = "active_learning"
    iteration: Optional[int] = None
    pool_ranks: Optional[List[int]] = None

    def __post_init__(self) -> None:
        if self.n_candidates == 0:
            self.n_candidates = len(self.configs)


class AcquisitionStrategy:
    """Base class: propose batches of configurations to evaluate.

    Subclasses implement :meth:`propose`; stateful strategies additionally
    override :meth:`observe` (called with the evaluated records of their last
    proposal) and the checkpointing hooks.
    """

    #: Provenance label for history records produced by this strategy.
    source = "active_learning"
    #: Whether the driver must build an encoded configuration pool.
    needs_pool = False
    #: Whether the driver may gather evaluation batches partially (overlap).
    supports_overlap = False
    #: Whether engine checkpoints capture enough state to resume this strategy.
    supports_checkpoint = False

    def reset(self, state: "SearchState") -> None:
        """Hook called once after bootstrap, before the first proposal."""

    def propose(self, state: "SearchState") -> Optional[Proposal]:
        """Return the next batch, or ``None``/empty to stop the search."""
        raise NotImplementedError

    def observe(self, state: "SearchState", records: Sequence) -> None:
        """Hook called with the history records of the last proposal."""

    # -- checkpointing ------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable strategy state (stateless strategies: empty)."""
        return {}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore :meth:`state_dict` output."""


class _SurrogateAcquisition(AcquisitionStrategy):
    """Shared plumbing for forest-surrogate strategies over an encoded pool.

    Handles surrogate (re)fitting from the pool's cached rows/quantization,
    filtering candidates against the engine's claimed ranks, and the
    spread-preserving batch capping of the original loop.
    """

    needs_pool = True
    supports_overlap = True
    supports_checkpoint = True

    def __init__(self, feasible_only: bool = True) -> None:
        self.feasible_only = bool(feasible_only)

    # -- shared steps ------------------------------------------------------------
    def _fit(self, state: "SearchState"):
        """(Re)fit the surrogate on the history, timed under the "fit" lap.

        With the default ``refit="full"`` a fresh surrogate is grown from
        scratch every iteration (bit-identical histories).  With
        ``refit="incremental"`` the previous iteration's surrogate is kept
        and only the newly appended history rows are routed through it.
        """
        prev = state.surrogate
        incremental = prev is not None and getattr(prev, "refit", "full") == "incremental"
        surrogate = prev if incremental else state.new_surrogate()
        encoded_pool = state.encoded_pool
        records = state.history.records
        train_configs = [r.config for r in records]
        with state.timer.lap("encode"):
            X_train = encoded_pool.rows_for(state.space, train_configs)
            if surrogate.splitter == "hist" and surrogate.max_bins == encoded_pool.bin_mapper.max_bins:
                # Share the pool's one-time quantization with every forest of
                # every refit: training rows are uint8 gathers from the cached
                # binned pool matrix.
                bin_mapper = encoded_pool.bin_mapper
                prebinned = encoded_pool.binned_rows_for(state.space, train_configs)
            else:
                bin_mapper = None
                prebinned = None
        metrics = [r.metrics for r in records]
        with state.timer.lap("fit"):
            if incremental:
                surrogate.fit_incremental(
                    X_train, metrics, bin_mapper=bin_mapper, prebinned=prebinned
                )
            else:
                surrogate.fit_encoded(
                    X_train, metrics, bin_mapper=bin_mapper, prebinned=prebinned
                )
        state.surrogate = surrogate
        return surrogate

    def _candidate_front(self, state: "SearchState"):
        """``(pool_ranks, values)`` of the predicted candidate front."""
        raise NotImplementedError

    def _select(
        self,
        state: "SearchState",
        front_idx: np.ndarray,
        front_values: np.ndarray,
    ) -> List[int]:
        """Drop already-claimed ranks and cap the batch, preserving spread.

        The predicted front is sorted by its objective tuple and subsampled
        at regular intervals so the evaluated batch spans the whole front
        rather than clustering in one region — an exact port of the original
        ``HyperMapper._select_subset``, operating on pool ranks.
        """
        claimed = state.claimed_ranks
        new_idx = [int(i) for i in front_idx if int(i) not in claimed]
        k = state.max_samples_per_iteration
        if k is None or len(new_idx) <= k:
            return new_idx
        pos = {int(i): j for j, i in enumerate(front_idx)}
        order = sorted(new_idx, key=lambda i: tuple(front_values[pos[i]]))
        positions = np.linspace(0, len(order) - 1, k).round().astype(int)
        positions = np.unique(positions)
        selected = [order[int(i)] for i in positions]
        # Top up with random picks if rounding collapsed some positions.
        if len(selected) < k:
            remaining = [i for i in order if i not in set(selected)]
            extra_idx = state.rng.choice(
                len(remaining), size=min(k - len(selected), len(remaining)), replace=False
            )
            selected.extend(remaining[int(i)] for i in extra_idx)
        return selected

    def propose(self, state: "SearchState") -> Optional[Proposal]:
        self._fit(state)
        with state.timer.lap("predict"):
            front_idx, front_values = self._candidate_front(state)
        selected = self._select(state, front_idx, front_values)
        pool = state.encoded_pool.configs
        return Proposal(
            configs=[pool[i] for i in selected],
            n_candidates=len(front_idx),
            source=self.source,
            pool_ranks=selected,
        )


@register_acquisition("predicted_pareto")
class PredictedPareto(_SurrogateAcquisition):
    """Algorithm 1's acquisition: evaluate the predicted Pareto front.

    Fit one random forest per objective, predict both objectives over the
    entire pool, and propose the non-dominated (and, by default, predicted
    feasible) subset that has not been evaluated yet — "letting the
    predictive model decide which samples will be most beneficial".
    """

    name = "predicted_pareto"

    def _candidate_front(self, state: "SearchState"):
        encoded_pool = state.encoded_pool
        return state.surrogate.predicted_pareto_encoded(
            encoded_pool.X,
            feasible_only=self.feasible_only,
            pool_index=encoded_pool.bitset_index,
        )


@register_acquisition("uncertainty_weighted")
class UncertaintyWeighted(_SurrogateAcquisition):
    """Lower-confidence-bound acquisition using the across-tree spread.

    The candidate front is the Pareto set of ``canonical(mean) - beta * std``
    rather than of the predicted mean: points whose forests disagree look
    optimistically good and get sampled, trading a little exploitation for
    model improvement.  ``beta=0`` recovers a (slower, std-computing)
    :class:`PredictedPareto`.
    """

    name = "uncertainty_weighted"

    def __init__(self, beta: float = 1.0, feasible_only: bool = True) -> None:
        super().__init__(feasible_only=feasible_only)
        if beta < 0:
            raise ValueError("beta must be >= 0")
        self.beta = float(beta)

    def _candidate_front(self, state: "SearchState"):
        encoded_pool = state.encoded_pool
        mean, std = state.surrogate.predict_with_std_encoded(
            encoded_pool.X, pool_index=encoded_pool.bitset_index
        )
        objectives = state.objectives
        lcb = objectives.to_canonical(mean) - self.beta * std
        candidates = np.arange(mean.shape[0])
        if self.feasible_only:
            feas = objectives.feasibility_mask(mean)
            if np.any(feas):
                candidates = np.flatnonzero(feas)
        mask = pareto_mask(lcb[candidates])
        idx = candidates[np.flatnonzero(mask)]
        return idx, lcb[idx]


@register_acquisition("epsilon_greedy")
class EpsilonGreedy(_SurrogateAcquisition):
    """Exploration wrapper: replace part of every batch with random picks.

    A fraction ``epsilon`` of the per-iteration batch (rounded down, at least
    one configuration when ``epsilon > 0``) is drawn uniformly from the
    not-yet-claimed pool; the rest comes from the wrapped model-based
    strategy (:class:`PredictedPareto` by default).  ``epsilon=0`` is exactly
    the wrapped strategy.
    """

    name = "epsilon_greedy"

    def __init__(
        self,
        epsilon: float = 0.1,
        inner: Optional[_SurrogateAcquisition] = None,
        feasible_only: bool = True,
    ) -> None:
        super().__init__(feasible_only=feasible_only)
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = float(epsilon)
        self.inner = inner if inner is not None else PredictedPareto(feasible_only=feasible_only)

    def _random_ranks(self, state: "SearchState", n: int, taken: set) -> List[int]:
        """Up to ``n`` distinct unclaimed pool ranks, uniformly at random."""
        pool_size = len(state.encoded_pool)
        out: List[int] = []
        attempts = 0
        while len(out) < n and attempts < 20 * max(n, 1):
            attempts += 1
            i = int(state.rng.integers(pool_size))
            if i in taken or i in state.claimed_ranks:
                continue
            taken.add(i)
            out.append(i)
        return out

    def propose(self, state: "SearchState") -> Optional[Proposal]:
        self.inner._fit(state)
        with state.timer.lap("predict"):
            front_idx, front_values = self.inner._candidate_front(state)
        exploit = self.inner._select(state, front_idx, front_values)
        cap = state.max_samples_per_iteration
        target = cap if cap is not None else len(exploit)
        n_explore = int(self.epsilon * target)
        if self.epsilon > 0 and target > 0:
            n_explore = max(n_explore, 1)
        if cap is not None and len(exploit) + n_explore > cap:
            exploit = exploit[: max(cap - n_explore, 0)]
        taken = set(exploit)
        explore = self._random_ranks(state, n_explore, taken)
        selected = exploit + explore
        pool = state.encoded_pool.configs
        return Proposal(
            configs=[pool[i] for i in selected],
            n_candidates=len(front_idx),
            source=self.source,
            pool_ranks=selected,
        )


#: Backward-compatible alias of the built-in entries; new registrations go
#: through :func:`repro.core.registry.register_acquisition`.
ACQUISITIONS = {
    "predicted_pareto": PredictedPareto,
    "uncertainty_weighted": UncertaintyWeighted,
    "epsilon_greedy": EpsilonGreedy,
}


def make_acquisition(name_or_strategy, **kwargs) -> AcquisitionStrategy:
    """Resolve an acquisition by registered name or pass an instance through."""
    if isinstance(name_or_strategy, AcquisitionStrategy):
        return name_or_strategy
    try:
        cls = ACQUISITION_REGISTRY.get(str(name_or_strategy))
    except UnknownPluginError as exc:
        raise ValueError(str(exc)) from None
    return cls(**kwargs)


__all__ = [
    "Proposal",
    "AcquisitionStrategy",
    "PredictedPareto",
    "UncertaintyWeighted",
    "EpsilonGreedy",
    "ACQUISITIONS",
    "make_acquisition",
]
