"""Evaluation of configurations on the (simulated) hardware.

In the paper every evaluation is a full run of the SLAM pipeline over a video
sequence on a physical board — the expensive black box.  Here an evaluator
wraps any callable mapping a configuration to a dictionary of metric values.
Layers provide caching (identical configurations are never re-run), budget
accounting, and optional parallel fan-out mirroring how runs are farmed out to
hardware.
"""

from __future__ import annotations

import concurrent.futures
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.objectives import ObjectiveSet
from repro.core.space import Configuration

MetricDict = Dict[str, float]
EvaluationFunction = Callable[[Configuration], Mapping[str, float]]


class EvaluationBudgetExceeded(RuntimeError):
    """Raised when an evaluator would exceed its configured evaluation budget."""


class Evaluator(ABC):
    """Abstract interface: evaluate configurations, track how many were run."""

    def __init__(self, objectives: ObjectiveSet) -> None:
        self.objectives = objectives
        self._n_evaluations = 0

    @property
    def n_evaluations(self) -> int:
        """Number of configurations actually evaluated (cache hits excluded)."""
        return self._n_evaluations

    @abstractmethod
    def evaluate(self, configs: Sequence[Configuration]) -> List[MetricDict]:
        """Evaluate ``configs`` and return one metric dictionary per config.

        Every returned dictionary must contain at least the declared objective
        names; extra metric keys (e.g. power, per-kernel breakdowns) are passed
        through to the history.
        """

    def evaluate_one(self, config: Configuration) -> MetricDict:
        """Evaluate a single configuration."""
        return self.evaluate([config])[0]

    def _check_metrics(self, metrics: Mapping[str, float]) -> MetricDict:
        missing = [o.name for o in self.objectives if o.name not in metrics]
        if missing:
            raise KeyError(f"evaluation result is missing objective values: {missing}")
        return {str(k): float(v) for k, v in metrics.items()}


class FunctionEvaluator(Evaluator):
    """Evaluator wrapping a plain Python callable.

    Parameters
    ----------
    fn:
        Callable mapping a configuration to a metric mapping.
    objectives:
        The declared objectives (validated against every result).
    max_evaluations:
        Optional hard budget; exceeding it raises
        :class:`EvaluationBudgetExceeded`.  This mirrors the paper's fixed
        hardware sampling budgets (e.g. 3,000 random samples).
    """

    def __init__(
        self,
        fn: EvaluationFunction,
        objectives: ObjectiveSet,
        max_evaluations: Optional[int] = None,
    ) -> None:
        super().__init__(objectives)
        self._fn = fn
        self.max_evaluations = max_evaluations

    def evaluate(self, configs: Sequence[Configuration]) -> List[MetricDict]:
        if self.max_evaluations is not None and self._n_evaluations + len(configs) > self.max_evaluations:
            raise EvaluationBudgetExceeded(
                f"evaluating {len(configs)} configurations would exceed the budget of "
                f"{self.max_evaluations} (already used {self._n_evaluations})"
            )
        results = []
        for config in configs:
            metrics = self._check_metrics(self._fn(config))
            results.append(metrics)
            self._n_evaluations += 1
        return results


class CachedEvaluator(Evaluator):
    """Memoizing wrapper: identical configurations are evaluated only once.

    Algorithm 1 repeatedly computes the set difference between the predicted
    Pareto front and the already-evaluated set; the cache makes re-requests of
    known configurations free (and keeps evaluation counts honest).
    """

    def __init__(self, inner: Evaluator) -> None:
        super().__init__(inner.objectives)
        self._inner = inner
        self._cache: Dict[Configuration, MetricDict] = {}

    @property
    def n_evaluations(self) -> int:
        return self._inner.n_evaluations

    @property
    def cache_size(self) -> int:
        """Number of distinct configurations held in the cache."""
        return len(self._cache)

    def is_cached(self, config: Configuration) -> bool:
        """Whether ``config`` has already been evaluated."""
        return config in self._cache

    def evaluate(self, configs: Sequence[Configuration]) -> List[MetricDict]:
        missing = [c for c in configs if c not in self._cache]
        # Deduplicate while preserving order.
        unique_missing: List[Configuration] = []
        seen = set()
        for c in missing:
            if c not in seen:
                unique_missing.append(c)
                seen.add(c)
        if unique_missing:
            fresh = self._inner.evaluate(unique_missing)
            for c, m in zip(unique_missing, fresh):
                self._cache[c] = m
        return [dict(self._cache[c]) for c in configs]


class WorkerPoolLifecycle:
    """Shared lazy worker-pool construction + close/context-manager lifecycle.

    Mixed into everything that fans work out over a persistent
    ``concurrent.futures`` pool (:class:`ParallelEvaluator`, the engine's
    :class:`~repro.core.executor.EvaluationExecutor`): the pool is created
    lazily on first use and persists across calls — spinning a pool up and
    down per batch costs more than a small batch itself.  ``close()`` (or
    the context-manager protocol) releases the workers; a closed instance
    refuses further work.
    """

    n_workers: int
    backend: str
    _pool: Optional[concurrent.futures.Executor] = None
    _closed: bool = False

    @staticmethod
    def _validate_pool_args(n_workers: int, backend: str, allow_socket: bool = False) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        allowed = ("thread", "process", "socket") if allow_socket else ("thread", "process")
        if backend not in allowed:
            raise ValueError(f"backend must be one of {allowed!r}")

    def _get_pool(self) -> concurrent.futures.Executor:
        if self._closed:
            raise RuntimeError(f"this {type(self).__name__} has been closed")
        if self._pool is None:
            executor_cls = (
                concurrent.futures.ThreadPoolExecutor
                if self.backend == "thread"
                else concurrent.futures.ProcessPoolExecutor
            )
            self._pool = executor_cls(max_workers=self.n_workers)
        return self._pool

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:
        # Last-resort guard against leaked worker pools when an exception
        # escapes submit/gather/evaluate and the owner never calls close()
        # (e.g. a crashed study).  Owners should still close deterministically
        # — Study.run does, in a finally block — this only stops a dropped
        # executor from pinning worker processes for the interpreter's life.
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False)


class ParallelEvaluator(WorkerPoolLifecycle, Evaluator):
    """Evaluator that fans evaluations out over a thread or process pool.

    The SLAM evaluation function is NumPy-heavy and releases the GIL inside
    vectorized kernels, so the default ``"thread"`` backend already yields
    useful speedups without requiring the evaluation function to be picklable.
    Use ``backend="process"`` for pure-Python evaluation functions.

    One worker pool is created lazily on first use and persists across
    :meth:`evaluate` calls; call :meth:`close` — or use the evaluator as a
    context manager — to release the workers.
    """

    def __init__(
        self,
        fn: EvaluationFunction,
        objectives: ObjectiveSet,
        n_workers: int = 4,
        backend: str = "thread",
        max_evaluations: Optional[int] = None,
    ) -> None:
        Evaluator.__init__(self, objectives)
        self._validate_pool_args(n_workers, backend)
        self._fn = fn
        self.n_workers = int(n_workers)
        self.backend = backend
        self.max_evaluations = max_evaluations

    def evaluate(self, configs: Sequence[Configuration]) -> List[MetricDict]:
        if self._closed:
            raise RuntimeError("this ParallelEvaluator has been closed")
        if self.max_evaluations is not None and self._n_evaluations + len(configs) > self.max_evaluations:
            raise EvaluationBudgetExceeded(
                f"evaluating {len(configs)} configurations would exceed the budget of "
                f"{self.max_evaluations} (already used {self._n_evaluations})"
            )
        if not configs:
            return []
        if self.n_workers == 1 or len(configs) == 1:
            results = [self._check_metrics(self._fn(c)) for c in configs]
            self._n_evaluations += len(configs)
            return results
        raw = list(self._get_pool().map(self._fn, configs))
        results = [self._check_metrics(m) for m in raw]
        self._n_evaluations += len(configs)
        return results


__all__ = [
    "MetricDict",
    "EvaluationFunction",
    "EvaluationBudgetExceeded",
    "Evaluator",
    "FunctionEvaluator",
    "CachedEvaluator",
    "WorkerPoolLifecycle",
    "ParallelEvaluator",
]
