"""Crash-residue detection and repair: the engine behind ``repro doctor``.

Every durable-I/O mechanism in this repo fails *recognizably*: atomic writes
strand ``*.tmp`` files, a killed history stream ends in a torn final JSONL
line, a dead worker leaves an expired (or orphaned) lease, and checksummed
envelopes expose bit rot.  The doctor walks a run or sweep directory, finds
exactly that residue, and — unless ``repair=False`` (``--dry-run``) —
removes or truncates it so the tree is indistinguishable from one that never
crashed.

What it will **not** touch:

* live leases on unfinished points (a worker is heartbeating them);
* run directories whose point is currently leased by a live worker;
* artifacts that are corrupt in ways no crash of our writers can produce
  (mid-file JSONL corruption, unparseable ``run.json``) — those are
  *reported* as unrepairable so a human decides.

Run it only when you believe no writer is live in the tree (live *leases*
are detected and respected; an unleased writer is invisible).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.durable import (
    CorruptArtifactError,
    CorruptJsonlError,
    repair_jsonl,
    read_checksummed_json,
    scan_jsonl,
)
from repro.core.leases import LEASE_SUFFIX, Lease
from repro.core.study import (
    HISTORY_FILE,
    PARETO_FILE,
    REPORT_FILE,
    RUN_FILE,
    SCENARIO_FILE,
    RESUME_TMP_FILE,
    run_residue,
)
from repro.core.sweep import (
    LEASES_DIR,
    SWEEP_FILE,
    TERMINAL_STATUSES,
    load_manifest,
    sweep_lock,
)


@dataclass
class DoctorFinding:
    """One piece of crash residue (or damage) the doctor identified.

    ``kind`` is one of ``tmp-residue``, ``resume-tmp``, ``torn-history``,
    ``orphaned-lease``, ``expired-lease``, ``corrupt-lease``,
    ``corrupt-artifact``.  ``repaired`` is ``True`` when this pass fixed it;
    ``repairable`` is ``False`` for damage the doctor refuses to touch.
    """

    kind: str
    path: str
    detail: str
    repaired: bool = False
    repairable: bool = True

    def describe(self) -> str:
        tag = "repaired" if self.repaired else ("found" if self.repairable else "unrepairable")
        return f"[{tag}] {self.kind}: {self.path} — {self.detail}"


@dataclass
class DoctorReport:
    """Everything one doctor pass found (and possibly fixed)."""

    root: Path
    findings: List[DoctorFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """The tree had no residue at all."""
        return not self.findings

    @property
    def healthy(self) -> bool:
        """The tree is usable: it was clean, or everything found was repaired."""
        return all(f.repaired for f in self.findings)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "root": str(self.root),
            "clean": self.clean,
            "healthy": self.healthy,
            "findings": [
                {
                    "kind": f.kind,
                    "path": f.path,
                    "detail": f.detail,
                    "repaired": f.repaired,
                    "repairable": f.repairable,
                }
                for f in self.findings
            ],
        }

    def describe(self) -> str:
        if self.clean:
            return f"{self.root}: clean"
        lines = [f.describe() for f in self.findings]
        lines.append(
            f"{self.root}: {len(self.findings)} finding(s), "
            f"{sum(1 for f in self.findings if f.repaired)} repaired"
        )
        return "\n".join(lines)


def _rel(root: Path, path: Path) -> str:
    try:
        return str(path.relative_to(root))
    except ValueError:
        return str(path)


def doctor_run_dir(
    run_dir: Union[str, Path], *, repair: bool = True, root: Optional[Path] = None
) -> List[DoctorFinding]:
    """Findings (and repairs) for one study run directory."""
    run_path = Path(run_dir)
    root = run_path if root is None else root
    findings: List[DoctorFinding] = []

    for residue in run_residue(run_path):
        kind = "resume-tmp" if residue.name == RESUME_TMP_FILE else "tmp-residue"
        detail = (
            "abandoned resume side stream"
            if kind == "resume-tmp"
            else "stranded atomic-write temporary"
        )
        if repair:
            residue.unlink(missing_ok=True)
        findings.append(DoctorFinding(kind, _rel(root, residue), detail, repaired=repair))

    history = run_path / HISTORY_FILE
    if history.exists():
        try:
            scan = scan_jsonl(history)
        except CorruptJsonlError as exc:
            findings.append(
                DoctorFinding(
                    "corrupt-artifact",
                    _rel(root, history),
                    f"mid-file corruption (not crash residue): {exc}",
                    repairable=False,
                )
            )
        else:
            if scan.is_torn:
                if repair:
                    repair_jsonl(history)
                tail = scan.torn_tail or ""
                findings.append(
                    DoctorFinding(
                        "torn-history",
                        _rel(root, history),
                        f"torn final line ({len(tail)} bytes) after "
                        f"{len(scan.records)} complete record(s)"
                        + ("; truncated" if repair else ""),
                        repaired=repair,
                    )
                )

    for name in (SCENARIO_FILE, RUN_FILE, PARETO_FILE, REPORT_FILE):
        path = run_path / name
        if not path.exists():
            continue
        try:
            json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            findings.append(
                DoctorFinding(
                    "corrupt-artifact",
                    _rel(root, path),
                    f"unparseable JSON: {exc}",
                    repairable=False,
                )
            )
    return findings


def doctor_sweep_dir(sweep_dir: Union[str, Path], *, repair: bool = True) -> List[DoctorFinding]:
    """Findings (and repairs) for a sweep directory and its point run dirs."""
    sweep_path = Path(sweep_dir)
    findings: List[DoctorFinding] = []
    try:
        manifest = load_manifest(sweep_path)
    except (OSError, ValueError) as exc:
        return [
            DoctorFinding(
                "corrupt-artifact",
                SWEEP_FILE,
                f"unreadable manifest: {exc}",
                repairable=False,
            )
        ]
    entries = {e["point_id"]: e for e in manifest["points"]}
    live_points: set = set()
    now = time.time()

    # Lease hygiene runs under the sweep lock so a repair can never race a
    # live worker's claim/settle cycle.
    with sweep_lock(sweep_path):
        lease_dir = sweep_path / LEASES_DIR
        for lease_path in sorted(lease_dir.glob(f"*{LEASE_SUFFIX}")) if lease_dir.is_dir() else []:
            pid = lease_path.name[: -len(LEASE_SUFFIX)]
            rel = _rel(sweep_path, lease_path)
            try:
                lease = Lease.from_payload(read_checksummed_json(lease_path))
            except (CorruptArtifactError, KeyError, TypeError, ValueError) as exc:
                if repair:
                    lease_path.unlink(missing_ok=True)
                findings.append(
                    DoctorFinding("corrupt-lease", rel, f"failed integrity check: {exc}", repaired=repair)
                )
                continue
            entry = entries.get(pid)
            if entry is None or entry["status"] in TERMINAL_STATUSES:
                if repair:
                    lease_path.unlink(missing_ok=True)
                findings.append(
                    DoctorFinding(
                        "orphaned-lease",
                        rel,
                        "its point is terminal (or unknown) in the manifest",
                        repaired=repair,
                    )
                )
            elif lease.expired(now):
                if repair:
                    lease_path.unlink(missing_ok=True)
                findings.append(
                    DoctorFinding(
                        "expired-lease",
                        rel,
                        f"heartbeat by {lease.owner!r} is {now - lease.heartbeat_at:.1f}s old "
                        f"(ttl {lease.ttl_s:.1f}s); the owner is presumed dead",
                        repaired=repair,
                    )
                )
            else:
                live_points.add(pid)
        tmp_dirs = [sweep_path] + ([lease_dir] if lease_dir.is_dir() else [])
        for directory in tmp_dirs:
            for tmp in sorted(directory.glob("*.tmp")):
                if repair:
                    tmp.unlink(missing_ok=True)
                findings.append(
                    DoctorFinding(
                        "tmp-residue",
                        _rel(sweep_path, tmp),
                        "stranded atomic-write temporary",
                        repaired=repair,
                    )
                )

    for pid, entry in entries.items():
        if pid in live_points:
            # A live worker owns this run dir right now; its stream files are
            # not residue. Leave the whole dir alone.
            continue
        run_dir = sweep_path / entry["run_dir"]
        if run_dir.is_dir():
            findings.extend(doctor_run_dir(run_dir, repair=repair, root=sweep_path))
    return findings


def doctor(path: Union[str, Path], *, repair: bool = True) -> DoctorReport:
    """Diagnose (and with ``repair``, fix) crash residue under ``path``.

    ``path`` may be a sweep directory (has ``sweep.json``) or a single run
    directory.  Raises :class:`FileNotFoundError` for anything else.
    """
    root = Path(path)
    if (root / SWEEP_FILE).exists():
        findings = doctor_sweep_dir(root, repair=repair)
    elif any((root / name).exists() for name in (SCENARIO_FILE, RUN_FILE, HISTORY_FILE)):
        findings = doctor_run_dir(root, repair=repair)
    else:
        raise FileNotFoundError(
            f"{root} is neither a sweep directory (no {SWEEP_FILE}) nor a run "
            f"directory (no {SCENARIO_FILE}/{RUN_FILE}/{HISTORY_FILE})"
        )
    return DoctorReport(root=root, findings=findings)


__all__ = [
    "DoctorFinding",
    "DoctorReport",
    "doctor",
    "doctor_run_dir",
    "doctor_sweep_dir",
]
