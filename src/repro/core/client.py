"""Thin stdlib client for the live optimization service.

:class:`ServiceClient` speaks the JSON API of :mod:`repro.core.server`
over ``urllib.request`` — no third-party HTTP stack — and is re-exported
as :mod:`repro.client` for the short import spelling::

    from repro.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8765")
    study_id = client.submit(scenario, tenant="alice", priority=5)
    for event in client.events(study_id):      # streamed NDJSON
        print(event)
    print(client.report(study_id))

Failures surface as :class:`ServiceHTTPError` carrying the HTTP status,
the decoded error body, and the service's CLI-equivalent ``exit_code``
(2 = the input was unusable, 1 = the work/state conflicted or failed).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Union

from repro.core.service import TERMINAL_STATUSES


class ServiceHTTPError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: Any, url: str) -> None:
        self.status = status
        self.payload = payload if isinstance(payload, dict) else {}
        error = self.payload.get("error") or {}
        self.message = error.get("message") or str(payload)
        #: JSON-pointer path for 422 validation errors, else None.
        self.path = error.get("path")
        #: The CLI-equivalent exit code the service attached (1 or 2).
        self.exit_code = self.payload.get("exit_code")
        where = f" at {self.path}" if self.path else ""
        super().__init__(f"HTTP {status} from {url}: {self.message}{where}")


class ServiceClient:
    """A connection-per-request client for one service base URL."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
        *,
        timeout: Optional[float] = None,
    ) -> Any:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = {"error": {"message": raw.decode("utf-8", "replace")}}
            raise ServiceHTTPError(exc.code, payload, url) from None

    # -- API -------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def plugins(self) -> Dict[str, List[str]]:
        return self._request("GET", "/v1/plugins")

    def list_studies(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/studies")["studies"]

    def submit(
        self,
        scenario: Mapping[str, Any],
        *,
        tenant: str = "default",
        priority: int = 0,
    ) -> str:
        """Submit a scenario document; returns the study id."""
        envelope = {"scenario": dict(scenario), "tenant": tenant, "priority": priority}
        return self._request("POST", "/v1/studies", envelope)["id"]

    def status(self, study_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/studies/{study_id}")

    def report(self, study_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/studies/{study_id}/report")

    def cancel(self, study_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/v1/studies/{study_id}")

    def events(
        self,
        study_id: str,
        *,
        follow: bool = True,
        timeout: Optional[float] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Yield the study's NDJSON progress events as dicts.

        With ``follow`` (default) the stream runs until the study is
        terminal (ending with an ``{"event": "end", ...}`` record);
        ``follow=False`` stops after the current backlog.
        """
        query = "" if follow else "?follow=0"
        url = f"{self.base_url}/v1/studies/{study_id}/events{query}"
        request = urllib.request.Request(url, headers={"Accept": "application/x-ndjson"})
        try:
            # No read timeout while following: the stream idles between
            # evaluations.  (Connect problems still raise URLError.)
            response = urllib.request.urlopen(
                request, timeout=timeout if timeout is not None else (None if follow else self.timeout)
            )
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = {}
            raise ServiceHTTPError(exc.code, payload, url) from None
        with response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def wait(
        self,
        study_id: str,
        *,
        timeout: Optional[float] = None,
        poll_s: float = 0.25,
    ) -> Dict[str, Any]:
        """Poll until the study is terminal; returns the final snapshot."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            snapshot = self.status(study_id)
            if snapshot["status"] in TERMINAL_STATUSES:
                return snapshot
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"study {study_id} still {snapshot['status']} after {timeout}s"
                )
            time.sleep(poll_s)

    def wait_healthy(self, *, timeout: float = 30.0, poll_s: float = 0.1) -> Dict[str, Any]:
        """Block until the server answers ``/healthz`` (startup handshake)."""
        deadline = time.monotonic() + timeout
        last: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                return self.health()
            except (urllib.error.URLError, ConnectionError, OSError) as exc:
                last = exc
                time.sleep(poll_s)
        raise TimeoutError(f"service at {self.base_url} not healthy after {timeout}s: {last}")


__all__ = ["ServiceClient", "ServiceHTTPError"]
