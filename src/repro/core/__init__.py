"""HyperMapper core: multi-objective design-space exploration with random forests.

This subpackage re-implements the paper's primary contribution:

* a declarative description of an algorithmic design space
  (:mod:`repro.core.parameters`, :mod:`repro.core.space`),
* randomized decision forest regressors built from scratch
  (:mod:`repro.core.tree`, :mod:`repro.core.forest`),
* Pareto-front utilities (:mod:`repro.core.pareto`),
* the active-learning optimizer of Algorithm 1 (:mod:`repro.core.optimizer`),
* baseline optimizers used for comparison (:mod:`repro.core.baselines`).

The core is application-agnostic: it optimizes any black-box callable that maps
a configuration dictionary to a vector of objective values.  The SLAM-specific
design spaces and evaluators live in :mod:`repro.slambench`.
"""

from repro.core.parameters import (
    Parameter,
    OrdinalParameter,
    IntegerParameter,
    RealParameter,
    CategoricalParameter,
    BooleanParameter,
)
from repro.core.space import Configuration, DesignSpace, EnumeratedConfigs
from repro.core.objectives import Objective, ObjectiveSet
from repro.core.forest import RandomForestRegressor
from repro.core.flat_forest import FlatForest, PoolIndex
from repro.core.tree import DecisionTreeRegressor
from repro.core.tree_builder import BinMapper, grow_tree_hist
from repro.core.pareto import (
    pareto_mask,
    pareto_front,
    dominates,
    hypervolume_2d,
    crowding_distance,
)
from repro.core.surrogate import MultiObjectiveSurrogate
from repro.core.evaluator import (
    Evaluator,
    FunctionEvaluator,
    CachedEvaluator,
    ParallelEvaluator,
    EvaluationBudgetExceeded,
)
from repro.core.executor import EvalFuture, EvaluationExecutor, as_executor
from repro.core.faults import (
    FAULT_KINDS,
    EvaluationFault,
    EvaluationTimeout,
    WorkerCrash,
    EvaluatorError,
    InvalidResult,
    FaultPolicy,
    FaultInjectingEvaluator,
    summarize_faults,
)
from repro.core.history import EvaluationRecord, History
from repro.core.sampling import RandomSampler, LatinHypercubeSampler, GridSampler, EncodedPool
from repro.core.constraints import Constraint, BoundConstraint, ConstraintSet
from repro.core.acquisition import (
    AcquisitionStrategy,
    Proposal,
    PredictedPareto,
    UncertaintyWeighted,
    EpsilonGreedy,
    make_acquisition,
)
from repro.core.engine import SearchDriver, SearchState
from repro.core.registry import (
    Registry,
    UnknownPluginError,
    EvaluatorBinding,
    SearchContext,
    ACQUISITION_REGISTRY,
    SEARCH_REGISTRY,
    EVALUATOR_REGISTRY,
    WORKLOAD_REGISTRY,
    DEVICE_REGISTRY,
    SCHEDULE_POLICY_REGISTRY,
    register_acquisition,
    register_search,
    register_evaluator,
    register_workload,
    register_device,
    register_schedule_policy,
    registry_snapshot,
)
from repro.core.scenario import (
    SCENARIO_VERSION,
    Scenario,
    ScenarioError,
    set_by_path,
    validate_scenario,
)
from repro.core.optimizer import HyperMapper, HyperMapperResult, ActiveLearningReport
from repro.core.study import RUN_DIR_VERSION, CompiledStudy, Study, StudyResult, run_status
from repro.core.scheduler import (
    StudyScheduler,
    StudySubmission,
    StudyOutcome,
    MapOrderedError,
    map_ordered,
)
from repro.core.sweep import (
    SWEEP_VERSION,
    SWEEP_DIR_VERSION,
    SweepError,
    SweepPoint,
    SweepSpec,
    SweepResult,
    validate_sweep,
    run_sweep,
    build_comparison,
    load_spec_file,
)
from repro.core.baselines import (
    RandomSearch,
    GridSearch,
    LocalSearch,
    EvolutionarySearch,
    BanditSearch,
)

__all__ = [
    "Parameter",
    "OrdinalParameter",
    "IntegerParameter",
    "RealParameter",
    "CategoricalParameter",
    "BooleanParameter",
    "Configuration",
    "DesignSpace",
    "EnumeratedConfigs",
    "Objective",
    "ObjectiveSet",
    "RandomForestRegressor",
    "FlatForest",
    "PoolIndex",
    "DecisionTreeRegressor",
    "BinMapper",
    "grow_tree_hist",
    "pareto_mask",
    "pareto_front",
    "dominates",
    "hypervolume_2d",
    "crowding_distance",
    "MultiObjectiveSurrogate",
    "Evaluator",
    "FunctionEvaluator",
    "CachedEvaluator",
    "ParallelEvaluator",
    "EvaluationBudgetExceeded",
    "EvalFuture",
    "EvaluationExecutor",
    "as_executor",
    "FAULT_KINDS",
    "EvaluationFault",
    "EvaluationTimeout",
    "WorkerCrash",
    "EvaluatorError",
    "InvalidResult",
    "FaultPolicy",
    "FaultInjectingEvaluator",
    "summarize_faults",
    "EvaluationRecord",
    "History",
    "RandomSampler",
    "LatinHypercubeSampler",
    "GridSampler",
    "EncodedPool",
    "AcquisitionStrategy",
    "Proposal",
    "PredictedPareto",
    "UncertaintyWeighted",
    "EpsilonGreedy",
    "make_acquisition",
    "SearchDriver",
    "SearchState",
    "Registry",
    "UnknownPluginError",
    "EvaluatorBinding",
    "SearchContext",
    "ACQUISITION_REGISTRY",
    "SEARCH_REGISTRY",
    "EVALUATOR_REGISTRY",
    "WORKLOAD_REGISTRY",
    "DEVICE_REGISTRY",
    "SCHEDULE_POLICY_REGISTRY",
    "register_acquisition",
    "register_search",
    "register_evaluator",
    "register_workload",
    "register_device",
    "register_schedule_policy",
    "registry_snapshot",
    "SCENARIO_VERSION",
    "Scenario",
    "ScenarioError",
    "set_by_path",
    "validate_scenario",
    "RUN_DIR_VERSION",
    "CompiledStudy",
    "Study",
    "StudyResult",
    "run_status",
    "StudyScheduler",
    "StudySubmission",
    "StudyOutcome",
    "MapOrderedError",
    "map_ordered",
    "SWEEP_VERSION",
    "SWEEP_DIR_VERSION",
    "SweepError",
    "SweepPoint",
    "SweepSpec",
    "SweepResult",
    "validate_sweep",
    "run_sweep",
    "build_comparison",
    "load_spec_file",
    "Constraint",
    "BoundConstraint",
    "ConstraintSet",
    "HyperMapper",
    "HyperMapperResult",
    "ActiveLearningReport",
    "RandomSearch",
    "GridSearch",
    "LocalSearch",
    "EvolutionarySearch",
    "BanditSearch",
]
