"""Pareto-dominance utilities for multi-objective optimization.

All functions assume *minimization* of every column.  The optimizer converts
objective values into canonical minimization form (see
:class:`repro.core.objectives.ObjectiveSet`) before calling in here.

The implementation is vectorized: the O(n log n) sweep used for two objectives
(the paper's case: accuracy and runtime) and a generic O(n^2) pairwise check
for three or more objectives (e.g. adding power as in the earlier HyperMapper
work).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _as_matrix(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    if values.ndim == 1:
        values = values.reshape(-1, 1)
    if values.ndim != 2:
        raise ValueError(f"expected a 2-D objective matrix, got shape {values.shape}")
    return values


def dominates(a: Sequence[float], b: Sequence[float], strict: bool = True) -> bool:
    """Whether point ``a`` Pareto-dominates point ``b`` (minimization).

    ``a`` dominates ``b`` when it is no worse in every objective and, if
    ``strict``, strictly better in at least one.
    """
    a_arr = np.asarray(a, dtype=np.float64)
    b_arr = np.asarray(b, dtype=np.float64)
    if a_arr.shape != b_arr.shape:
        raise ValueError("points must have the same number of objectives")
    if np.any(a_arr > b_arr):
        return False
    if strict:
        return bool(np.any(a_arr < b_arr))
    return True


def pareto_mask(values: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows of ``values`` (minimization).

    Duplicated points are all kept (they do not dominate each other strictly).
    """
    values = _as_matrix(values)
    n, m = values.shape
    if n == 0:
        return np.zeros(0, dtype=bool)
    if m == 1:
        best = values[:, 0].min()
        return values[:, 0] == best
    if m == 2:
        return _pareto_mask_2d(values)
    return _pareto_mask_nd(values)


def _pareto_mask_2d(values: np.ndarray) -> np.ndarray:
    """Fully vectorized O(n log n) sweep for the bi-objective case.

    After sorting by (first, second) objective, a point is non-dominated iff
    its second objective strictly undercuts the running minimum of everything
    before it.  Exact duplicates of a non-dominated point are also kept: in
    the sorted order they form a contiguous run starting at the point that
    achieved the minimum, so keep-status is broadcast across runs of
    identical rows.
    """
    n = values.shape[0]
    f0, f1 = values[:, 0], values[:, 1]
    # Sort by first objective ascending, ties broken by second ascending.
    order = np.lexsort((f1, f0))
    f1_sorted = f1[order]
    # Running minimum of the second objective over strictly-preceding points.
    prev_min = np.empty(n, dtype=np.float64)
    prev_min[0] = np.inf
    np.minimum.accumulate(f1_sorted[:-1], out=prev_min[1:])
    keep_strict = f1_sorted < prev_min
    # Runs of identical (f0, f1) rows inherit the keep-status of their head.
    row_sorted = values[order]
    run_head = np.empty(n, dtype=bool)
    run_head[0] = True
    run_head[1:] = np.any(row_sorted[1:] != row_sorted[:-1], axis=1)
    run_id = np.cumsum(run_head) - 1
    keep_sorted = keep_strict[np.flatnonzero(run_head)][run_id]
    mask = np.zeros(n, dtype=bool)
    mask[order] = keep_sorted
    return mask


def _pareto_mask_nd(values: np.ndarray) -> np.ndarray:
    """Generic pairwise dominance check (O(n^2), vectorized per row)."""
    n = values.shape[0]
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        no_worse = np.all(values <= values[i], axis=1)
        strictly_better = np.any(values < values[i], axis=1)
        dominators = no_worse & strictly_better
        dominators[i] = False
        if np.any(dominators):
            mask[i] = False
    return mask


def pareto_front(values: np.ndarray, return_indices: bool = False):
    """Non-dominated subset of ``values`` sorted by the first objective.

    Parameters
    ----------
    values:
        ``(n, m)`` objective matrix (minimization).
    return_indices:
        Also return the indices (into ``values``) of the returned rows.
    """
    values = _as_matrix(values)
    mask = pareto_mask(values)
    idx = np.flatnonzero(mask)
    front = values[idx]
    order = np.lexsort(tuple(front[:, k] for k in range(front.shape[1] - 1, -1, -1)))
    front = front[order]
    idx = idx[order]
    if return_indices:
        return front, idx
    return front


def non_dominated_sort(values: np.ndarray) -> np.ndarray:
    """Assign each row its non-domination rank (0 = Pareto-optimal).

    Used by the NSGA-II-style evolutionary baseline.
    """
    values = _as_matrix(values)
    n = values.shape[0]
    ranks = np.full(n, -1, dtype=np.int64)
    remaining = np.ones(n, dtype=bool)
    rank = 0
    while np.any(remaining):
        idx = np.flatnonzero(remaining)
        sub_mask = pareto_mask(values[idx])
        front_idx = idx[sub_mask]
        ranks[front_idx] = rank
        remaining[front_idx] = False
        rank += 1
    return ranks


def crowding_distance(values: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance of each row within its own set.

    Boundary points get ``inf``; larger means more isolated.
    """
    values = _as_matrix(values)
    n, m = values.shape
    if n == 0:
        return np.zeros(0)
    dist = np.zeros(n, dtype=np.float64)
    for j in range(m):
        order = np.argsort(values[:, j], kind="stable")
        col = values[order, j]
        span = col[-1] - col[0]
        dist[order[0]] = np.inf
        dist[order[-1]] = np.inf
        if span <= 0 or n < 3:
            continue
        dist[order[1:-1]] += (col[2:] - col[:-2]) / span
    return dist


def hypervolume_2d(values: np.ndarray, reference: Sequence[float]) -> float:
    """Hypervolume dominated by ``values`` w.r.t. ``reference`` (2 objectives).

    The hypervolume indicator is used to quantify how much the active-learning
    front improves over the random-sampling front (larger is better).  Points
    that do not dominate the reference contribute nothing.
    """
    values = _as_matrix(values)
    if values.shape[1] != 2:
        raise ValueError("hypervolume_2d only supports exactly two objectives")
    ref = np.asarray(reference, dtype=np.float64)
    if ref.shape != (2,):
        raise ValueError("reference must be a 2-vector")
    if values.shape[0] == 0:
        return 0.0
    # Keep only points strictly better than the reference in both objectives.
    keep = np.all(values < ref, axis=1)
    pts = values[keep]
    if pts.shape[0] == 0:
        return 0.0
    front = pareto_front(pts)
    # Left neighbor's height caps each point's dominated rectangle; the front
    # is sorted by the first objective so the second is non-increasing.
    prev_f1 = np.concatenate(([ref[1]], front[:-1, 1]))
    return float(np.sum((ref[0] - front[:, 0]) * (prev_f1 - front[:, 1])))


def front_coverage(front_a: np.ndarray, front_b: np.ndarray) -> float:
    """Fraction of points of ``front_b`` dominated by at least one point of ``front_a``.

    The two-set coverage indicator C(A, B) of Zitzler; C(A, B) = 1 means every
    point of B is dominated by some point of A.
    """
    a = _as_matrix(front_a)
    b = _as_matrix(front_b)
    if b.shape[0] == 0:
        return 0.0
    if a.shape[0] == 0:
        return 0.0
    # Pairwise dominance on a broadcast (n_a, n_b, m) grid.
    no_worse = np.all(a[:, None, :] <= b[None, :, :], axis=2)
    strictly_better = np.any(a[:, None, :] < b[None, :, :], axis=2)
    dominated = np.any(no_worse & strictly_better, axis=0)
    return float(dominated.sum() / b.shape[0])


def nearest_front_distance(values: np.ndarray, front: np.ndarray) -> np.ndarray:
    """Euclidean distance of each row of ``values`` to its closest front point.

    The active-learning step samples configurations whose *predicted*
    objectives are near the predicted Pareto front; this helper measures that
    proximity.
    """
    values = _as_matrix(values)
    front = _as_matrix(front)
    if front.shape[0] == 0:
        return np.full(values.shape[0], np.inf)
    diff = values[:, None, :] - front[None, :, :]
    d = np.sqrt(np.sum(diff * diff, axis=2))
    return d.min(axis=1)


__all__ = [
    "dominates",
    "pareto_mask",
    "pareto_front",
    "non_dominated_sort",
    "crowding_distance",
    "hypervolume_2d",
    "front_coverage",
    "nearest_front_distance",
]
