"""Histogram-binned, frontier-batched tree fitting engine.

Forest *fitting* is the hot path of every HyperMapper active-learning
iteration: both per-objective forests are refitted from scratch each round.
The exact splitter in :mod:`repro.core.tree` pays one ``argsort`` per
(node, candidate feature); this module replaces that with the
LightGBM-style histogram strategy:

* :class:`BinMapper` quantizes every feature column into at most 255
  ``uint8`` bins.  Design-space feature matrices are tiny alphabets
  (ordinal values, booleans, one-hot blocks), so binning is almost always
  *lossless* — every distinct value gets its own bin and the candidate
  thresholds are exactly the midpoints the exact splitter would consider.
  The mapper is derived once per run from the configuration-pool matrix and
  cached on it (:class:`repro.core.sampling.EncodedPool`), so every refit of
  every tree across all iterations reuses one shared binned matrix.

* :func:`grow_tree_hist` grows one tree breadth-first.  Split search is
  cumulative bin-statistic scans (``np.bincount`` histograms of
  weight / weight·y / weight·y² per bin — the gather-free formulation of the
  ``np.add.at`` scatter) vectorized across **all features of all frontier
  nodes at once**, and each level only scans the *smaller* child of every
  split: the larger sibling's histogram is obtained by parent-minus-sibling
  subtraction.

* Bootstrap resamples are per-row integer **weight vectors**
  (``np.bincount`` of the draw) instead of materialized row copies, so all
  trees of a forest share one binned matrix and the out-of-bag rows are
  simply ``weight == 0``.  Weighted statistics make the fit identical to
  fitting on materialized duplicate rows (sample counts, node means, split
  gains all agree; sums are bit-identical whenever the targets sum exactly,
  e.g. integer-valued or dyadic ``y``).

The grower emits the same :class:`_NodeArrays` as the exact splitter, so the
flat-forest inference kernels (and all their equivalence guarantees) carry
over unchanged — thresholds are genuine float thresholds, valid for
arbitrary inputs at prediction time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.utils.rng import RandomState, as_generator

#: Highest bin count representable in a ``uint8`` binned matrix.
MAX_BINS = 255


@dataclass
class _NodeArrays:
    """Flat array representation of a fitted tree."""

    feature: np.ndarray  # (n_nodes,) int64, -1 for leaves
    threshold: np.ndarray  # (n_nodes,) float64
    left: np.ndarray  # (n_nodes,) int64, -1 for leaves
    right: np.ndarray  # (n_nodes,) int64, -1 for leaves
    value: np.ndarray  # (n_nodes,) float64 mean target at node
    n_samples: np.ndarray  # (n_nodes,) int64
    impurity: np.ndarray  # (n_nodes,) float64 variance at node


class _NodeStore:
    """Growable breadth-first node storage shared by both histogram growers."""

    __slots__ = ("feature", "threshold", "left", "right", "value", "n_samples", "impurity")

    def __init__(self) -> None:
        self.feature: List[int] = []
        self.threshold: List[float] = []
        self.left: List[int] = []
        self.right: List[int] = []
        self.value: List[float] = []
        self.n_samples: List[int] = []
        self.impurity: List[float] = []

    def new_node(self, sw: float, swy: float, swy2: float) -> int:
        node_id = len(self.feature)
        self.feature.append(-1)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        mean = swy / sw
        self.value.append(float(mean))
        self.n_samples.append(int(round(sw)))
        self.impurity.append(float(max(swy2 / sw - mean * mean, 0.0)))
        return node_id

    def finish(self) -> _NodeArrays:
        return _NodeArrays(
            feature=np.asarray(self.feature, dtype=np.int64),
            threshold=np.asarray(self.threshold, dtype=np.float64),
            left=np.asarray(self.left, dtype=np.int64),
            right=np.asarray(self.right, dtype=np.int64),
            value=np.asarray(self.value, dtype=np.float64),
            n_samples=np.asarray(self.n_samples, dtype=np.int64),
            impurity=np.asarray(self.impurity, dtype=np.float64),
        )


class BinMapper:
    """Quantize feature columns into at most ``max_bins`` ``uint8`` bins.

    Per column the mapper stores the sorted *thresholds* separating
    consecutive bins: value ``x`` falls into bin ``searchsorted(thr, x)``,
    i.e. bin ``b`` holds exactly the values with
    ``thr[b-1] < x <= thr[b]``.  A tree split "bin <= b" therefore means
    precisely ``x <= thr[b]`` for every possible input, which is what lets
    the histogram grower emit ordinary float thresholds.

    Columns with at most ``max_bins`` distinct values are binned losslessly
    (thresholds are the midpoints between consecutive distinct values — the
    same candidate set the exact splitter scans).  Wider columns get
    equal-frequency bins with boundaries snapped to midpoints between
    adjacent observed values.
    """

    def __init__(self, max_bins: int = MAX_BINS) -> None:
        if not (2 <= int(max_bins) <= MAX_BINS):
            raise ValueError(f"max_bins must be in [2, {MAX_BINS}], got {max_bins}")
        self.max_bins = int(max_bins)
        self.bin_thresholds_: Optional[List[np.ndarray]] = None
        self.n_bins_: Optional[np.ndarray] = None

    # -- fitting -------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "BinMapper":
        """Derive per-column bin thresholds from the reference matrix ``X``."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if not np.all(np.isfinite(X)):
            raise ValueError("X must be finite")
        thresholds: List[np.ndarray] = []
        for j in range(X.shape[1]):
            uniq, counts = np.unique(X[:, j], return_counts=True)
            if uniq.size <= self.max_bins:
                thr = 0.5 * (uniq[:-1] + uniq[1:])
            else:
                # Equal-frequency boundaries over the observed distribution.
                cum = np.cumsum(counts)
                targets = cum[-1] * np.arange(1, self.max_bins) / self.max_bins
                pos = np.searchsorted(cum, targets)
                pos = np.unique(np.minimum(pos, uniq.size - 2))
                thr = 0.5 * (uniq[pos] + uniq[pos + 1])
            thresholds.append(np.ascontiguousarray(thr, dtype=np.float64))
        self.bin_thresholds_ = thresholds
        self.n_bins_ = np.array([t.size + 1 for t in thresholds], dtype=np.int64)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Map ``X`` onto its ``uint8`` bin-index matrix."""
        thresholds = self._require_fitted()
        X = np.asarray(X, dtype=np.float64)
        one_d = X.ndim == 1
        if one_d:
            X = X.reshape(1, -1)
        if X.ndim != 2 or X.shape[1] != len(thresholds):
            raise ValueError(f"expected (n, {len(thresholds)}) features, got shape {X.shape}")
        binned = np.empty(X.shape, dtype=np.uint8)
        for j, thr in enumerate(thresholds):
            binned[:, j] = np.searchsorted(thr, X[:, j], side="left")
        return binned[0] if one_d else binned

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """:meth:`fit` then :meth:`transform` on the same matrix."""
        return self.fit(X).transform(X)

    # -- introspection -------------------------------------------------------
    @property
    def n_features(self) -> int:
        """Number of columns the mapper was fitted on."""
        return len(self._require_fitted())

    def _require_fitted(self) -> List[np.ndarray]:
        if self.bin_thresholds_ is None:
            raise RuntimeError("this BinMapper is not fitted yet")
        return self.bin_thresholds_


def grow_tree_hist(
    binned: np.ndarray,
    bin_thresholds: Sequence[np.ndarray],
    y: np.ndarray,
    sample_weight: Optional[np.ndarray] = None,
    *,
    max_depth: Optional[int] = None,
    min_samples_split: int = 2,
    min_samples_leaf: int = 1,
    min_impurity_decrease: float = 0.0,
    n_feat_per_split: Optional[int] = None,
    rng: RandomState = None,
) -> _NodeArrays:
    """Grow one regression tree breadth-first on a pre-binned matrix.

    Parameters
    ----------
    binned:
        ``(n, d)`` ``uint8`` bin indices (see :class:`BinMapper`).
    bin_thresholds:
        Per-column float thresholds between consecutive bins; splitting at
        bin boundary ``b`` emits threshold ``bin_thresholds[j][b]``.
    y:
        ``(n,)`` regression targets.
    sample_weight:
        Optional ``(n,)`` non-negative weights.  Integer weight vectors are
        how the forest represents bootstrap resamples; ``min_samples_*`` and
        node sizes count *weighted* samples, matching a materialized
        resample exactly.  Zero-weight rows are ignored entirely.
    max_depth, min_samples_split, min_samples_leaf, min_impurity_decrease:
        Usual CART stopping rules (on weighted counts / per-sample gain).
    n_feat_per_split:
        Features examined per node (``None`` for all); each frontier node
        draws its own subset — batched into one ``rng`` call per level.
    rng:
        Randomness for the feature subsets.

    Returns
    -------
    _NodeArrays
        Flat node arrays in breadth-first order.
    """
    binned = np.ascontiguousarray(binned, dtype=np.uint8)
    if binned.ndim != 2:
        raise ValueError(f"binned must be 2-D, got shape {binned.shape}")
    n, d = binned.shape
    if len(bin_thresholds) != d:
        raise ValueError("bin_thresholds must have one entry per column")
    y = np.asarray(y, dtype=np.float64).ravel()
    if y.shape[0] != n:
        raise ValueError("binned and y have inconsistent lengths")
    if sample_weight is None:
        w = np.ones(n, dtype=np.float64)
    else:
        w = np.asarray(sample_weight, dtype=np.float64).ravel()
        if w.shape[0] != n:
            raise ValueError("sample_weight must have one entry per row")
        if np.any(w < 0) or not np.any(w > 0):
            raise ValueError("sample_weight must be non-negative with at least one positive entry")
    gen = as_generator(rng)
    if n_feat_per_split is None or n_feat_per_split > d:
        n_feat_per_split = d

    n_bins = np.array([t.size + 1 for t in bin_thresholds], dtype=np.int64)
    B = int(n_bins.max())
    wy = w * y
    wy2 = wy * y

    # Growable node storage (breadth-first ids).
    store = _NodeStore()

    order = np.flatnonzero(w > 0).astype(np.int64)
    root_w = float(np.sum(w[order]))
    root_wy = float(np.sum(wy[order]))
    root_wy2 = float(np.sum(wy2[order]))
    store.new_node(root_w, root_wy, root_wy2)

    if B < 2:  # every column is constant: nothing to split on
        return store.finish()

    # Padded (d, B-1) lookup tables shared by every level: the float
    # threshold of each bin boundary and whether the boundary exists for
    # the column (columns with fewer bins than B have trailing padding).
    thr_mat = np.full((d, B - 1), np.nan, dtype=np.float64)
    for j, thr in enumerate(bin_thresholds):
        thr_mat[j, : thr.size] = thr
    boundary_ok = np.arange(B - 1)[None, :] < (n_bins[:, None] - 1)

    # Frontier state: per-slot node id and [start, end) segment of `order`,
    # plus the node's weighted statistics.  Histograms for the current level
    # are computed by scanning only the slots flagged in `scan_mask`; the
    # rest are derived as parent-minus-sibling from the previous level.
    node_of_slot = np.array([0], dtype=np.int64)
    seg_start = np.array([0], dtype=np.int64)
    seg_end = np.array([order.size], dtype=np.int64)
    Sw = np.array([root_w])
    Swy = np.array([root_wy])
    Swy2 = np.array([root_wy2])
    scan_mask = np.array([True])
    parent_ref = np.zeros(1, dtype=np.int64)  # previous-level slot of each parent
    sibling_ref = np.zeros(1, dtype=np.int64)  # current-level slot of the scanned sibling
    H_prev: Optional[tuple] = None

    depth = 0
    feat_arange = np.arange(d, dtype=np.int64)
    while node_of_slot.size:
        S = node_of_slot.size

        # --- 1. per-slot histograms of (w, w*y, w*y^2) over (feature, bin)
        size = S * d * B
        scan_slots = np.flatnonzero(scan_mask)
        if scan_slots.size:
            lengths = seg_end[scan_slots] - seg_start[scan_slots]
            rows = np.concatenate(
                [order[s:e] for s, e in zip(seg_start[scan_slots], seg_end[scan_slots])]
            )
            slot_rep = np.repeat(scan_slots, lengths)
            flat = ((slot_rep[:, None] * d + feat_arange[None, :]) * B + binned[rows]).ravel()
            Hw = np.bincount(flat, weights=np.repeat(w[rows], d), minlength=size)
            Hwy = np.bincount(flat, weights=np.repeat(wy[rows], d), minlength=size)
            Hwy2 = np.bincount(flat, weights=np.repeat(wy2[rows], d), minlength=size)
        else:  # pragma: no cover - at least one child per level is scanned
            Hw = np.zeros(size)
            Hwy = np.zeros(size)
            Hwy2 = np.zeros(size)
        Hw = Hw.reshape(S, d, B)
        Hwy = Hwy.reshape(S, d, B)
        Hwy2 = Hwy2.reshape(S, d, B)
        sub_slots = np.flatnonzero(~scan_mask)
        if sub_slots.size:
            assert H_prev is not None
            Hw[sub_slots] = H_prev[0][parent_ref[sub_slots]] - Hw[sibling_ref[sub_slots]]
            Hwy[sub_slots] = H_prev[1][parent_ref[sub_slots]] - Hwy[sibling_ref[sub_slots]]
            Hwy2[sub_slots] = H_prev[2][parent_ref[sub_slots]] - Hwy2[sibling_ref[sub_slots]]

        # --- 2. stopping rules that need no split search
        mean = Swy / Sw
        sse_node = Swy2 - Swy * mean
        # Purity tolerance mirroring the exact splitter's allclose() stop.
        tol = Sw * (1e-8 + 1e-5 * np.abs(mean)) ** 2
        eligible = (Sw >= min_samples_split) & (sse_node > tol)
        if max_depth is not None and depth >= max_depth:
            eligible[:] = False

        if not np.any(eligible):
            break

        # --- 3. per-node random feature subsets, one rng call per level
        if n_feat_per_split < d:
            ranks = np.argsort(gen.random((S, d)), axis=1, kind="stable")
            feat_mask = np.zeros((S, d), dtype=bool)
            np.put_along_axis(feat_mask, ranks[:, :n_feat_per_split], True, axis=1)
        else:
            feat_mask = np.ones((S, d), dtype=bool)

        # --- 4. split search: cumulative bin scans, all slots and features at once
        cw = np.cumsum(Hw, axis=2)[:, :, :-1]
        cwy = np.cumsum(Hwy, axis=2)[:, :, :-1]
        cwy2 = np.cumsum(Hwy2, axis=2)[:, :, :-1]
        rw = Sw[:, None, None] - cw
        rwy = Swy[:, None, None] - cwy
        rwy2 = Swy2[:, None, None] - cwy2
        valid = boundary_ok[None, :, :] & feat_mask[:, :, None]
        valid &= (cw >= min_samples_leaf) & (rw >= min_samples_leaf)
        with np.errstate(divide="ignore", invalid="ignore"):
            sse_split = (cwy2 - cwy * cwy / cw) + (rwy2 - rwy * rwy / rw)
        gain = sse_node[:, None, None] - sse_split
        gain = np.where(valid, gain, -np.inf)
        flat_gain = gain.reshape(S, d * (B - 1))
        best = np.argmax(flat_gain, axis=1)
        slots_idx = np.arange(S)
        best_gain = flat_gain[slots_idx, best]
        best_feat = best // (B - 1)
        best_b = best - best_feat * (B - 1)
        # Per-sample (weighted variance) decrease, normalized by the *node*
        # size — not the full dataset — so min_impurity_decrease means the
        # same thing at every depth.
        split_ok = eligible & np.isfinite(best_gain) & ~(best_gain / Sw < min_impurity_decrease)
        sp = np.flatnonzero(split_ok)
        if sp.size == 0:
            break

        # --- 5. record splits and allocate children (left then right, slot order)
        lw = cw[sp, best_feat[sp], best_b[sp]]
        lwy = cwy[sp, best_feat[sp], best_b[sp]]
        lwy2 = cwy2[sp, best_feat[sp], best_b[sp]]
        rw_ = Sw[sp] - lw
        rwy_ = Swy[sp] - lwy
        rwy2_ = Swy2[sp] - lwy2
        n_child = 2 * sp.size
        child_node = np.empty(n_child, dtype=np.int64)
        for k, s in enumerate(sp):
            nid = int(node_of_slot[s])
            store.feature[nid] = int(best_feat[s])
            store.threshold[nid] = float(thr_mat[best_feat[s], best_b[s]])
            lid = store.new_node(float(lw[k]), float(lwy[k]), float(lwy2[k]))
            rid = store.new_node(float(rw_[k]), float(rwy_[k]), float(rwy2_[k]))
            store.left[nid] = lid
            store.right[nid] = rid
            child_node[2 * k] = lid
            child_node[2 * k + 1] = rid

        # --- 6. partition rows of the splitting slots into child segments
        sp_lengths = seg_end[sp] - seg_start[sp]
        rows = np.concatenate([order[s:e] for s, e in zip(seg_start[sp], seg_end[sp])])
        local = np.repeat(np.arange(sp.size, dtype=np.int64), sp_lengths)
        go_right = binned[rows, best_feat[sp][local]] > best_b[sp][local]
        key = local * 2 + go_right
        perm = np.argsort(key, kind="stable")
        order = rows[perm]
        child_len = np.bincount(key, minlength=n_child)
        bounds = np.concatenate(([0], np.cumsum(child_len)))

        # --- 7. next frontier: scan the smaller child, subtract the larger
        left_smaller = child_len[0::2] <= child_len[1::2]
        next_scan = np.empty(n_child, dtype=bool)
        next_scan[0::2] = left_smaller
        next_scan[1::2] = ~left_smaller
        next_sibling = np.arange(n_child, dtype=np.int64)
        next_sibling[0::2] += 1  # left's sibling is right …
        next_sibling[1::2] -= 1  # … and vice versa
        H_prev = (Hw[sp], Hwy[sp], Hwy2[sp])
        parent_ref = np.repeat(np.arange(sp.size, dtype=np.int64), 2)
        sibling_ref = next_sibling
        scan_mask = next_scan
        node_of_slot = child_node
        seg_start = bounds[:-1]
        seg_end = bounds[1:]
        new_Sw = np.empty(n_child)
        new_Swy = np.empty(n_child)
        new_Swy2 = np.empty(n_child)
        new_Sw[0::2], new_Sw[1::2] = lw, rw_
        new_Swy[0::2], new_Swy[1::2] = lwy, rwy_
        new_Swy2[0::2], new_Swy2[1::2] = lwy2, rwy2_
        Sw, Swy, Swy2 = new_Sw, new_Swy, new_Swy2
        depth += 1

    return store.finish()


def grow_forest_hist(
    binned: np.ndarray,
    bin_thresholds: Sequence[np.ndarray],
    y: np.ndarray,
    sample_weights: Optional[Sequence[Optional[np.ndarray]]] = None,
    *,
    n_trees: Optional[int] = None,
    max_depth: Optional[int] = None,
    min_samples_split: int = 2,
    min_samples_leaf: int = 1,
    min_impurity_decrease: float = 0.0,
    n_feat_per_split: Optional[int] = None,
    rngs: Optional[Sequence[RandomState]] = None,
) -> List[_NodeArrays]:
    """Grow every tree of a forest breadth-first *together*, level-synchronously.

    One frontier spans ``(tree, node)`` pairs across all trees: each level's
    histograms are a single :func:`np.bincount` pass over the shared binned
    matrix (per-tree bootstrap weights stacked as a ``(n_trees, n)`` matrix),
    and the split search is one cumulative bin-statistic scan over every
    feature of every frontier node of every tree.  A 32-tree refit therefore
    touches the binned matrix once per level instead of 32 times, turning
    ~10 NumPy dispatches × levels × trees into ~10 × levels.

    Bit-identical to fitting each tree with :func:`grow_tree_hist`: slots
    stay tree-major so every per-(slot, feature, bin) accumulation runs in the
    same row order, per-slot scan/subtraction/split arithmetic is unchanged,
    and each tree consumes its own generator in exactly the per-tree call
    sequence (one ``random((S_t, d))`` draw per level while the tree still has
    an eligible frontier node; no draw the level it stops).

    Parameters match :func:`grow_tree_hist` except:

    sample_weights:
        Per-tree weight vectors (``None`` entries mean unit weights) or a
        stacked ``(n_trees, n)`` matrix.  Integer vectors are the forest's
        bootstrap resamples.
    n_trees:
        Forest size; inferred from ``sample_weights``/``rngs`` when omitted.
    rngs:
        One independent generator (or seed) per tree for the feature subsets.

    Returns
    -------
    list of _NodeArrays
        Per-tree flat node arrays in breadth-first order.

    Notes
    -----
    Peak scratch memory is ``O(frontier_slots * d * max_bins)`` floats per
    statistic with ``frontier_slots`` summed over all trees; callers fitting
    very large row counts with wide bins should fall back to per-tree growth
    (see ``RandomForestRegressor.fit``).
    """
    binned = np.ascontiguousarray(binned, dtype=np.uint8)
    if binned.ndim != 2:
        raise ValueError(f"binned must be 2-D, got shape {binned.shape}")
    n, d = binned.shape
    if len(bin_thresholds) != d:
        raise ValueError("bin_thresholds must have one entry per column")
    y = np.asarray(y, dtype=np.float64).ravel()
    if y.shape[0] != n:
        raise ValueError("binned and y have inconsistent lengths")
    if n_trees is None:
        if rngs is not None:
            n_trees = len(rngs)
        elif sample_weights is not None:
            n_trees = len(sample_weights)
        else:
            raise ValueError("n_trees is required when neither sample_weights nor rngs is given")
    T = int(n_trees)
    if T < 1:
        raise ValueError("n_trees must be >= 1")
    if rngs is None:
        rngs = [None] * T
    if len(rngs) != T:
        raise ValueError("rngs must have one entry per tree")
    gens = [as_generator(r) for r in rngs]
    W = np.ones((T, n), dtype=np.float64)
    if sample_weights is not None:
        if len(sample_weights) != T:
            raise ValueError("sample_weights must have one entry per tree")
        for t in range(T):
            sw = sample_weights[t]
            if sw is None:
                continue
            swv = np.asarray(sw, dtype=np.float64).ravel()
            if swv.shape[0] != n:
                raise ValueError("sample_weight must have one entry per row")
            if np.any(swv < 0) or not np.any(swv > 0):
                raise ValueError(
                    "sample_weight must be non-negative with at least one positive entry"
                )
            W[t] = swv
    if n_feat_per_split is None or n_feat_per_split > d:
        n_feat_per_split = d

    n_bins = np.array([t.size + 1 for t in bin_thresholds], dtype=np.int64)
    B = int(n_bins.max())
    WY = W * y[None, :]
    WY2 = WY * y[None, :]
    # Flattened stacks: global row id g = tree * n + row indexes all three.
    Wf, WYf, WY2f = W.ravel(), WY.ravel(), WY2.ravel()

    order_parts: List[np.ndarray] = []
    seg_bounds = [0]
    root_stats = np.empty((T, 3), dtype=np.float64)
    for t in range(T):
        order_t = np.flatnonzero(W[t] > 0).astype(np.int64)
        root_stats[t] = (
            float(np.sum(W[t][order_t])),
            float(np.sum(WY[t][order_t])),
            float(np.sum(WY2[t][order_t])),
        )
        order_parts.append(order_t + t * n)
        seg_bounds.append(seg_bounds[-1] + order_t.size)

    # Node storage is one chunk of vectorized per-node fields per level
    # (chunk 0 = the T roots, chunk L = every child allocated at level L, in
    # slot order).  Frontier slot s at level L is exactly entry s of chunk L,
    # so recording a level's splits is a handful of fancy-indexed writes
    # instead of a Python loop over nodes; `_finish_chunks` reassembles the
    # per-tree breadth-first arrays (chunk order is id order within a tree).
    root_mean = root_stats[:, 1] / root_stats[:, 0]
    chunk_tree: List[np.ndarray] = [np.arange(T, dtype=np.int64)]
    chunk_feature: List[np.ndarray] = [np.full(T, -1, dtype=np.int64)]
    chunk_threshold: List[np.ndarray] = [np.zeros(T, dtype=np.float64)]
    chunk_left: List[np.ndarray] = [np.full(T, -1, dtype=np.int64)]
    chunk_right: List[np.ndarray] = [np.full(T, -1, dtype=np.int64)]
    chunk_value: List[np.ndarray] = [root_mean]
    chunk_n: List[np.ndarray] = [np.round(root_stats[:, 0]).astype(np.int64)]
    chunk_imp: List[np.ndarray] = [
        np.maximum(root_stats[:, 2] / root_stats[:, 0] - root_mean * root_mean, 0.0)
    ]
    node_count = np.ones(T, dtype=np.int64)

    def _finish_chunks() -> List[_NodeArrays]:
        tree_all = np.concatenate(chunk_tree)
        by_tree = np.argsort(tree_all, kind="stable")
        fields = [
            np.concatenate(c)[by_tree]
            for c in (
                chunk_feature,
                chunk_threshold,
                chunk_left,
                chunk_right,
                chunk_value,
                chunk_n,
                chunk_imp,
            )
        ]
        bounds_t = np.concatenate(([0], np.cumsum(np.bincount(tree_all, minlength=T))))
        return [
            _NodeArrays(
                feature=fields[0][s:e],
                threshold=fields[1][s:e],
                left=fields[2][s:e],
                right=fields[3][s:e],
                value=fields[4][s:e],
                n_samples=fields[5][s:e],
                impurity=fields[6][s:e],
            )
            for s, e in zip(bounds_t[:-1], bounds_t[1:])
        ]

    if B < 2:  # every column is constant: nothing to split on
        return _finish_chunks()

    thr_mat = np.full((d, B - 1), np.nan, dtype=np.float64)
    for j, thr in enumerate(bin_thresholds):
        thr_mat[j, : thr.size] = thr
    boundary_ok = np.arange(B - 1)[None, :] < (n_bins[:, None] - 1)

    # Frontier state mirrors grow_tree_hist, with slots tree-major (every
    # tree's slots contiguous and in its own per-tree order) plus the owning
    # tree of every slot.  `order` holds *global* row ids (tree * n + row).
    order = np.concatenate(order_parts) if order_parts else np.empty(0, dtype=np.int64)
    tree_of_slot = np.arange(T, dtype=np.int64)
    node_of_slot = np.zeros(T, dtype=np.int64)  # tree-local breadth-first ids
    seg_start = np.asarray(seg_bounds[:-1], dtype=np.int64)
    seg_end = np.asarray(seg_bounds[1:], dtype=np.int64)
    Sw = root_stats[:, 0].copy()
    Swy = root_stats[:, 1].copy()
    Swy2 = root_stats[:, 2].copy()
    scan_mask = np.ones(T, dtype=bool)
    parent_ref = np.zeros(T, dtype=np.int64)
    sibling_ref = np.zeros(T, dtype=np.int64)
    H_prev: Optional[tuple] = None

    depth = 0
    feat_arange = np.arange(d, dtype=np.int64)
    while node_of_slot.size:
        S = node_of_slot.size

        # --- 1. per-slot histograms of (w, w*y, w*y^2) over (feature, bin)
        size = S * d * B
        scan_slots = np.flatnonzero(scan_mask)
        if scan_slots.size:
            lengths = seg_end[scan_slots] - seg_start[scan_slots]
            rows_g = np.concatenate(
                [order[s:e] for s, e in zip(seg_start[scan_slots], seg_end[scan_slots])]
            )
            rows = rows_g % n  # local rows for the shared binned matrix
            slot_rep = np.repeat(scan_slots, lengths)
            flat = ((slot_rep[:, None] * d + feat_arange[None, :]) * B + binned[rows]).ravel()
            Hw = np.bincount(flat, weights=np.repeat(Wf[rows_g], d), minlength=size)
            Hwy = np.bincount(flat, weights=np.repeat(WYf[rows_g], d), minlength=size)
            Hwy2 = np.bincount(flat, weights=np.repeat(WY2f[rows_g], d), minlength=size)
        else:  # pragma: no cover - at least one child per level is scanned
            Hw = np.zeros(size)
            Hwy = np.zeros(size)
            Hwy2 = np.zeros(size)
        Hw = Hw.reshape(S, d, B)
        Hwy = Hwy.reshape(S, d, B)
        Hwy2 = Hwy2.reshape(S, d, B)
        sub_slots = np.flatnonzero(~scan_mask)
        if sub_slots.size:
            assert H_prev is not None
            Hw[sub_slots] = H_prev[0][parent_ref[sub_slots]] - Hw[sibling_ref[sub_slots]]
            Hwy[sub_slots] = H_prev[1][parent_ref[sub_slots]] - Hwy[sibling_ref[sub_slots]]
            Hwy2[sub_slots] = H_prev[2][parent_ref[sub_slots]] - Hwy2[sibling_ref[sub_slots]]

        # --- 2. stopping rules that need no split search
        mean = Swy / Sw
        sse_node = Swy2 - Swy * mean
        tol = Sw * (1e-8 + 1e-5 * np.abs(mean)) ** 2
        eligible = (Sw >= min_samples_split) & (sse_node > tol)
        if max_depth is not None and depth >= max_depth:
            eligible[:] = False

        if not np.any(eligible):
            break

        # --- 3. per-tree random feature subsets: every tree that still has an
        # eligible frontier node consumes exactly the draw its standalone
        # grow_tree_hist call would (one (S_t, d) block per level); a tree
        # whose slots are all ineligible stops *before* drawing, matching the
        # per-tree break.  Slots are tree-major, so trees are contiguous runs.
        if n_feat_per_split < d:
            R = np.zeros((S, d))
            run_starts = np.flatnonzero(np.diff(tree_of_slot, prepend=-1))
            run_ends = np.append(run_starts[1:], S)
            for s0, s1 in zip(run_starts, run_ends):
                if np.any(eligible[s0:s1]):
                    R[s0:s1] = gens[tree_of_slot[s0]].random((s1 - s0, d))
            ranks = np.argsort(R, axis=1, kind="stable")
            feat_mask = np.zeros((S, d), dtype=bool)
            np.put_along_axis(feat_mask, ranks[:, :n_feat_per_split], True, axis=1)
        else:
            feat_mask = np.ones((S, d), dtype=bool)

        # --- 4. split search: cumulative bin scans, all slots of all trees at once
        cw = np.cumsum(Hw, axis=2)[:, :, :-1]
        cwy = np.cumsum(Hwy, axis=2)[:, :, :-1]
        cwy2 = np.cumsum(Hwy2, axis=2)[:, :, :-1]
        rw = Sw[:, None, None] - cw
        rwy = Swy[:, None, None] - cwy
        rwy2 = Swy2[:, None, None] - cwy2
        valid = boundary_ok[None, :, :] & feat_mask[:, :, None]
        valid &= (cw >= min_samples_leaf) & (rw >= min_samples_leaf)
        with np.errstate(divide="ignore", invalid="ignore"):
            sse_split = (cwy2 - cwy * cwy / cw) + (rwy2 - rwy * rwy / rw)
        gain = sse_node[:, None, None] - sse_split
        gain = np.where(valid, gain, -np.inf)
        flat_gain = gain.reshape(S, d * (B - 1))
        best = np.argmax(flat_gain, axis=1)
        slots_idx = np.arange(S)
        best_gain = flat_gain[slots_idx, best]
        best_feat = best // (B - 1)
        best_b = best - best_feat * (B - 1)
        split_ok = eligible & np.isfinite(best_gain) & ~(best_gain / Sw < min_impurity_decrease)
        sp = np.flatnonzero(split_ok)
        if sp.size == 0:
            break

        # --- 5. record splits and allocate children (left then right, slot
        # order — tree-major slots keep every tree's breadth-first ids
        # identical to its standalone growth).  Child ids are the per-tree
        # running node count plus the child's rank within its tree's run of
        # `sp` (slots are tree-major, so each tree's splits are contiguous).
        lw = cw[sp, best_feat[sp], best_b[sp]]
        lwy = cwy[sp, best_feat[sp], best_b[sp]]
        lwy2 = cwy2[sp, best_feat[sp], best_b[sp]]
        rw_ = Sw[sp] - lw
        rwy_ = Swy[sp] - lwy
        rwy2_ = Swy2[sp] - lwy2
        n_child = 2 * sp.size
        tr = tree_of_slot[sp]
        sp_counts = np.bincount(tr, minlength=T)
        run_offset = np.concatenate(([0], np.cumsum(sp_counts)[:-1]))
        rank = np.arange(sp.size, dtype=np.int64) - run_offset[tr]
        lid = node_count[tr] + 2 * rank
        rid = lid + 1
        node_count += 2 * sp_counts
        chunk_feature[depth][sp] = best_feat[sp]
        chunk_threshold[depth][sp] = thr_mat[best_feat[sp], best_b[sp]]
        chunk_left[depth][sp] = lid
        chunk_right[depth][sp] = rid
        child_sw = np.empty(n_child)
        child_swy = np.empty(n_child)
        child_swy2 = np.empty(n_child)
        child_sw[0::2], child_sw[1::2] = lw, rw_
        child_swy[0::2], child_swy[1::2] = lwy, rwy_
        child_swy2[0::2], child_swy2[1::2] = lwy2, rwy2_
        child_mean = child_swy / child_sw
        chunk_tree.append(np.repeat(tr, 2))
        chunk_feature.append(np.full(n_child, -1, dtype=np.int64))
        chunk_threshold.append(np.zeros(n_child, dtype=np.float64))
        chunk_left.append(np.full(n_child, -1, dtype=np.int64))
        chunk_right.append(np.full(n_child, -1, dtype=np.int64))
        chunk_value.append(child_mean)
        chunk_n.append(np.round(child_sw).astype(np.int64))
        chunk_imp.append(
            np.maximum(child_swy2 / child_sw - child_mean * child_mean, 0.0)
        )
        child_node = np.empty(n_child, dtype=np.int64)
        child_node[0::2] = lid
        child_node[1::2] = rid

        # --- 6. partition rows of the splitting slots into child segments
        sp_lengths = seg_end[sp] - seg_start[sp]
        rows_g = np.concatenate([order[s:e] for s, e in zip(seg_start[sp], seg_end[sp])])
        local = np.repeat(np.arange(sp.size, dtype=np.int64), sp_lengths)
        go_right = binned[rows_g % n, best_feat[sp][local]] > best_b[sp][local]
        key = local * 2 + go_right
        perm = np.argsort(key, kind="stable")
        order = rows_g[perm]
        child_len = np.bincount(key, minlength=n_child)
        bounds = np.concatenate(([0], np.cumsum(child_len)))

        # --- 7. next frontier: scan the smaller child, subtract the larger
        left_smaller = child_len[0::2] <= child_len[1::2]
        next_scan = np.empty(n_child, dtype=bool)
        next_scan[0::2] = left_smaller
        next_scan[1::2] = ~left_smaller
        next_sibling = np.arange(n_child, dtype=np.int64)
        next_sibling[0::2] += 1
        next_sibling[1::2] -= 1
        H_prev = (Hw[sp], Hwy[sp], Hwy2[sp])
        parent_ref = np.repeat(np.arange(sp.size, dtype=np.int64), 2)
        sibling_ref = next_sibling
        scan_mask = next_scan
        node_of_slot = child_node
        tree_of_slot = np.repeat(tr, 2)
        seg_start = bounds[:-1]
        seg_end = bounds[1:]
        Sw, Swy, Swy2 = child_sw, child_swy, child_swy2
        depth += 1

    return _finish_chunks()


__all__ = ["BinMapper", "grow_tree_hist", "grow_forest_hist", "MAX_BINS", "_NodeArrays"]
