"""The ``Study`` front door: compile a scenario, run it, persist artifacts.

A :class:`Study` turns a validated :class:`~repro.core.scenario.Scenario`
into the engine stack (:class:`~repro.core.engine.SearchDriver` +
:class:`~repro.core.executor.EvaluationExecutor`, via the search registry)
and returns a typed :class:`StudyResult`.  With a ``run_dir`` it persists a
**versioned run directory**::

    run_dir/
      scenario.json          # the normalized scenario (exact input)
      run.json               # run-dir version, status, engine metadata
      history.jsonl          # one evaluation record per line, streamed
      pareto.json            # final Pareto front (records)
      report.json            # summary derived from history.jsonl
      checkpoints/engine.json  # resumable engine checkpoint

that reloads into a :class:`StudyResult` *without re-running*
(:meth:`StudyResult.load`), and from which ``Study.resume`` (or ``python -m
repro resume``) continues a killed run bit-identically.

The persisted ``history.jsonl`` is the single source of truth:
:meth:`StudyResult.report` derives its summary statistics from the file when
a run directory exists, never from in-memory duplicates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.engine import ActiveLearningReport, HyperMapperResult, SearchPreempted
from repro.core.executor import EvaluationExecutor
from repro.core.faults import (
    FaultInjectingEvaluator,
    FaultPolicy,
    attempts_quarantined,
    summarize_faults,
)
from repro.core.durable import atomic_write_json, read_jsonl
from repro.core.history import EvaluationRecord, History, HistoryWriter
from repro.core.objectives import ObjectiveSet
from repro.core.pareto import hypervolume_2d
from repro.core.registry import (
    EVALUATOR_REGISTRY,
    SEARCH_REGISTRY,
    EvaluatorBinding,
    SearchContext,
    register_evaluator,
)
from repro.core.scenario import Scenario, ScenarioError
from repro.core.space import DesignSpace
from repro.utils.rng import derive_seed
from repro.utils.serialization import to_jsonable

#: Version stamp of the persisted run-directory layout.
RUN_DIR_VERSION = 1

#: File names inside a run directory.
SCENARIO_FILE = "scenario.json"
RUN_FILE = "run.json"
HISTORY_FILE = "history.jsonl"
PARETO_FILE = "pareto.json"
REPORT_FILE = "report.json"
CHECKPOINT_DIR = "checkpoints"
CHECKPOINT_FILE = "engine.json"


@register_evaluator("function")
def make_function_evaluator(
    spec: Mapping[str, Any], *, evaluate: Optional[Callable] = None, **_: Any
) -> EvaluatorBinding:
    """The host-injected black box: the scenario stays declarative, the
    callable is bound at :class:`Study` construction (``Study(scenario,
    evaluate=fn)``), exactly how HyperMapper's service wraps a client
    function.  Such scenarios must declare ``space`` and ``objectives``
    explicitly and cannot be resumed from the CLI (no callable to rebind).
    """
    if evaluate is None:
        raise ScenarioError(
            "/evaluator/type",
            "evaluator type 'function' needs a host-provided callable: "
            "construct the study as Study(scenario, evaluate=fn)",
        )
    return EvaluatorBinding(fn=evaluate, info={"type": "function"})


# The streamed history sink lives with the history model now; the old
# underscored name stays importable for existing callers and tests.
_HistoryWriter = HistoryWriter


def run_status(run_dir: Union[str, Path]) -> Optional[str]:
    """Status recorded in a run directory's ``run.json``.

    ``"complete"``, ``"degraded"`` (finished, but some configurations were
    quarantined with penalty metrics), ``"running"`` (killed mid-run or
    live), ``"parked"`` (preempted at an iteration boundary behind a
    resumable checkpoint — the live service's cheap-preemption state),
    ``"failed"``, or ``None`` when the directory holds no readable
    run metadata.  This is the cheap completeness probe the sweep scheduler
    uses to decide whether a point needs (re-)running — no history is parsed.
    """
    path = Path(run_dir) / RUN_FILE
    if not path.exists():
        return None
    try:
        meta = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    status = meta.get("status")
    return None if status is None else str(status)


#: Crash residue recognizable inside a run directory: atomic-write
#: temporaries and the resume side stream.
RESUME_TMP_FILE = HISTORY_FILE + ".resume-tmp"


def run_residue(run_dir: Union[str, Path]) -> List[Path]:
    """Leftover temporary files a crash may have stranded in a run dir.

    Matches ``*.tmp`` (atomic-write temporaries, current and legacy naming)
    in the run dir and its checkpoint dir, plus an abandoned
    ``history.jsonl.resume-tmp``.  Pure probe — nothing is removed.
    """
    run_path = Path(run_dir)
    if not run_path.is_dir():
        return []
    residue = sorted(run_path.glob("*.tmp")) + sorted(
        (run_path / CHECKPOINT_DIR).glob("*.tmp")
    )
    resume_tmp = run_path / RESUME_TMP_FILE
    if resume_tmp.exists():
        residue.append(resume_tmp)
    return residue


def clean_run_residue(run_dir: Union[str, Path]) -> List[Path]:
    """Remove crash residue from a run directory (see :func:`run_residue`).

    Only safe when no writer is live in the directory — callers are the
    fresh/resume run setup (which owns the dir) and ``repro doctor``.
    Returns the paths removed.
    """
    removed = []
    for path in run_residue(run_dir):
        path.unlink(missing_ok=True)
        removed.append(path)
    return removed


def _load_history_jsonl(path: Path, objectives: ObjectiveSet, space: Optional[DesignSpace]) -> History:
    # A history killed mid-append ends in a torn final line; everything before
    # it is complete records, so resume/report paths drop the tail instead of
    # dying on json.JSONDecodeError (mid-file corruption still raises).
    dicts = read_jsonl(path, tolerate_torn_tail=True) if path.exists() else []
    return History.from_dicts(objectives, dicts, space=space)


@dataclass
class CompiledStudy:
    """The concrete engine stack a scenario compiles into."""

    space: DesignSpace
    objectives: ObjectiveSet
    executor: EvaluationExecutor
    search: Any
    binding: Optional[EvaluatorBinding]

    @property
    def acquisition_name(self) -> Optional[str]:
        acquisition = getattr(self.search, "acquisition", None)
        return type(acquisition).__name__ if acquisition is not None else None


def apply_constraints(scenario: Scenario, records: List[EvaluationRecord]) -> List[EvaluationRecord]:
    """Drop records violating the scenario's declared metric-bound constraints.

    Search-time feasibility is driven by the objectives' ``limit`` fields;
    the ``constraints`` section additionally filters what is *reported* as
    the Pareto front (``pareto.json``, ``report.json``, ``StudyResult.pareto``).
    """
    constraints = scenario.build_constraints()
    if len(constraints) == 0:
        return records
    return [r for r in records if constraints.is_feasible(r.config, r.metrics)]


@dataclass
class StudyResult:
    """Typed outcome of a study run (or of loading a persisted run dir)."""

    scenario: Scenario
    objectives: ObjectiveSet
    history: History
    pareto: List[EvaluationRecord]
    iterations: List[ActiveLearningReport]
    space: Optional[DesignSpace] = None
    run_dir: Optional[Path] = None
    engine_info: Dict[str, Any] = field(default_factory=dict)

    # -- analysis (mirrors HyperMapperResult) ---------------------------------
    def pareto_matrix(self) -> np.ndarray:
        """Objective matrix (natural units) of the final Pareto front."""
        if not self.pareto:
            return np.empty((0, len(self.objectives)))
        return np.array(
            [r.objective_values(self.objectives) for r in self.pareto], dtype=np.float64
        )

    def best_by(self, objective_name: str) -> Optional[EvaluationRecord]:
        """Pareto record optimizing one objective."""
        if not self.pareto:
            return None
        obj = self.objectives[objective_name]
        return min(self.pareto, key=lambda r: obj.canonical(float(r.metrics[objective_name])))

    def hypervolume(self, reference: Sequence[float]) -> float:
        """Hypervolume of the final front w.r.t. a reference point (2 objectives)."""
        front = self.objectives.to_canonical(self.pareto_matrix())
        ref = self.objectives.to_canonical(np.asarray(reference, dtype=float).reshape(1, -1))[0]
        return hypervolume_2d(front, ref)

    def quality_curve(
        self, reference: Sequence[float], history: Optional[History] = None
    ) -> List[List[float]]:
        """Budget-to-quality series: ``[n_evaluations, hypervolume]`` pairs.

        After each evaluation of the persisted history (the single source of
        truth), the hypervolume of the feasible points seen so far w.r.t. a
        *canonical* (minimization-form) 2-objective reference point —
        typically one shared across every point of a sweep so the curves are
        comparable.  Empty for problems with ``!= 2`` objectives.  Pass an
        already-loaded ``history`` to avoid re-parsing ``history.jsonl``.
        """
        if len(self.objectives) != 2:
            return []
        if history is None:
            history = self.persisted_history()
        if len(history) == 0:
            return []
        matrix = history.objective_matrix(canonical=True)
        mask = history.feasible_mask()
        ref = np.asarray(reference, dtype=np.float64)
        # Incremental: the prefix hypervolume only changes when a new point
        # joins the running Pareto front, so recompute (over the front, not
        # the whole prefix) only then — O(n·front) instead of O(n²·log n).
        front: List[tuple] = []
        hv = 0.0
        curve: List[List[float]] = []
        for i in range(len(history)):
            if mask[i]:
                p = (float(matrix[i, 0]), float(matrix[i, 1]))
                if not any(q[0] <= p[0] and q[1] <= p[1] for q in front):
                    front = [q for q in front if not (p[0] <= q[0] and p[1] <= q[1])]
                    front.append(p)
                    hv = float(hypervolume_2d(np.asarray(front), ref))
            curve.append([i + 1, hv])
        return curve

    # -- fault accounting ------------------------------------------------------
    @property
    def is_degraded(self) -> bool:
        """Whether any configuration was quarantined (penalty metrics stand in).

        A degraded run *finished* — its artifacts are complete and loadable —
        but its history contains poison configurations whose metrics are the
        fault policy's penalty values, not genuine measurements.
        """
        return any(attempts_quarantined(r.attempts) for r in self.history.records)

    def fault_summary(self) -> Dict[str, Any]:
        """Aggregate retry/quarantine statistics (see
        :func:`repro.core.faults.summarize_faults`)."""
        return summarize_faults(self.persisted_history().records)

    # -- persistence-backed reporting ----------------------------------------
    def persisted_history(self) -> History:
        """The history as persisted in ``history.jsonl`` (single source of truth).

        Falls back to the in-memory history for ephemeral (dir-less) runs.
        """
        if self.run_dir is None:
            return self.history
        path = Path(self.run_dir) / HISTORY_FILE
        if not path.exists():  # artifacts moved/deleted after the run
            return self.history
        return _load_history_jsonl(path, self.objectives, self.space)

    def report(self) -> Dict[str, Any]:
        """Summary statistics derived from the persisted history."""
        history = self.persisted_history()
        pareto = apply_constraints(self.scenario, history.pareto_records(feasible_only=True))
        summary = history.summary()
        # summary() counts the unconstrained front; the report reflects the
        # constraint-filtered one.
        summary["n_pareto"] = len(pareto)
        best: Dict[str, Any] = {}
        for objective in self.objectives:
            record = None
            if pareto:
                record = min(
                    pareto, key=lambda r: objective.canonical(float(r.metrics[objective.name]))
                )
            best[objective.name] = (
                None
                if record is None
                else {"config": dict(record.config), "metrics": dict(record.metrics)}
            )
        return {
            "run_dir_version": RUN_DIR_VERSION,
            "scenario": self.scenario.name,
            "algorithm": self.scenario.search_spec["algorithm"],
            **summary,
            "n_iterations": len(self.iterations),
            "best": best,
            "iterations": [r.to_dict() for r in self.iterations],
            "engine": dict(self.engine_info),
            "faults": summarize_faults(history.records),
        }

    # -- loading --------------------------------------------------------------
    @classmethod
    def load(cls, run_dir: Union[str, Path]) -> "StudyResult":
        """Reload a persisted run directory without re-running anything."""
        run_dir = Path(run_dir)
        scenario_path = run_dir / SCENARIO_FILE
        if not scenario_path.exists():
            raise FileNotFoundError(f"{run_dir} is not a study run directory (no {SCENARIO_FILE})")
        run_meta: Dict[str, Any] = {}
        run_path = run_dir / RUN_FILE
        if run_path.exists():
            run_meta = json.loads(run_path.read_text())
            version = int(run_meta.get("run_dir_version", -1))
            if version != RUN_DIR_VERSION:
                raise ValueError(
                    f"unsupported run-dir version {version} in {run_dir} "
                    f"(this build understands {RUN_DIR_VERSION})"
                )
        scenario = Scenario.from_file(scenario_path)
        space, objectives = resolve_problem(scenario)
        history = _load_history_jsonl(run_dir / HISTORY_FILE, objectives, space)
        iterations: List[ActiveLearningReport] = []
        engine_info: Dict[str, Any] = dict(run_meta.get("engine", {}))
        report_path = run_dir / REPORT_FILE
        if report_path.exists():
            report = json.loads(report_path.read_text())
            iterations = [ActiveLearningReport.from_dict(d) for d in report.get("iterations", [])]
            engine_info = dict(report.get("engine", engine_info))
        return cls(
            scenario=scenario,
            objectives=objectives,
            history=history,
            pareto=apply_constraints(scenario, history.pareto_records(feasible_only=True)),
            iterations=iterations,
            space=space,
            run_dir=run_dir,
            engine_info=engine_info,
        )


def resolve_problem(scenario: Scenario) -> tuple:
    """``(space, objectives)`` of a scenario without building its evaluator.

    Explicit declarations win; otherwise the evaluator factory's cheap
    ``resolve_problem`` hook supplies them (e.g. the slambench workload's
    space/objectives — no runner or dataset is constructed).
    """
    space = scenario.build_space()
    objectives = scenario.build_objectives()
    if space is None or objectives is None:
        spec = scenario.evaluator_spec
        factory = EVALUATOR_REGISTRY.get(spec["type"])
        hook = getattr(factory, "resolve_problem", None)
        if hook is not None:
            fallback_space, fallback_objectives = hook(spec)
            space = space if space is not None else fallback_space
            objectives = objectives if objectives is not None else fallback_objectives
    if objectives is None:
        raise ScenarioError("/objectives", "cannot be resolved: none declared or supplied")
    if space is None:
        raise ScenarioError("/space", "cannot be resolved: none declared or supplied")
    return space, objectives


class Study:
    """A scenario bound to its host-side objects, ready to run.

    Parameters
    ----------
    scenario:
        A :class:`Scenario`, a raw mapping, or a path to a ``.json``/``.toml``
        scenario file.
    evaluate:
        The black-box callable for ``{"type": "function"}`` evaluators.
    runner:
        A pre-built :class:`~repro.slambench.runner.SlamBenchRunner` injected
        into the ``slambench`` evaluator so several studies share one
        simulation cache (accuracy is device-independent).
    executor:
        A pre-built :class:`~repro.core.executor.EvaluationExecutor` shared
        across studies (its memoized evaluations short-circuit duplicated
        bootstraps); overrides the scenario's ``executor``/``budget`` wiring.
    broker:
        A running :class:`~repro.core.transport.EvaluationBroker` the
        study-owned executor should drain its evaluations through when the
        scenario declares ``executor.backend: "socket"`` (the service and
        scheduler pass their shared broker here).  The broker's lifecycle
        stays with its owner.
    """

    def __init__(
        self,
        scenario: Union[Scenario, Mapping[str, Any], str, Path],
        *,
        evaluate: Optional[Callable] = None,
        runner: Optional[Any] = None,
        executor: Optional[EvaluationExecutor] = None,
        broker: Optional[Any] = None,
    ) -> None:
        self.scenario = Scenario.coerce(scenario)
        self._evaluate = evaluate
        self._runner = runner
        self._executor = executor
        self._broker = broker

    # -- compilation ----------------------------------------------------------
    def compile(
        self,
        checkpoint_path: Optional[str] = None,
        record_sink: Optional[Callable[[EvaluationRecord], None]] = None,
        stop_requested: Optional[Callable[[], bool]] = None,
    ) -> CompiledStudy:
        """Resolve every plugin and build the engine stack (no run)."""
        scenario = self.scenario
        evaluator_spec = scenario.evaluator_spec
        factory = EVALUATOR_REGISTRY.get(evaluator_spec["type"])
        binding: Optional[EvaluatorBinding] = None
        space = scenario.build_space()
        objectives = scenario.build_objectives()
        if self._executor is None:
            binding = factory(evaluator_spec, evaluate=self._evaluate, runner=self._runner)
            space = space if space is not None else binding.space
            objectives = objectives if objectives is not None else binding.objectives
        elif space is None or objectives is None:
            # Only the problem definition is needed (the injected executor
            # already wraps the black box): prefer the factory's cheap
            # resolve_problem hook over building a full evaluator binding.
            hook = getattr(factory, "resolve_problem", None)
            if hook is not None:
                fallback_space, fallback_objectives = hook(evaluator_spec)
            else:
                binding = factory(evaluator_spec, evaluate=self._evaluate, runner=self._runner)
                fallback_space, fallback_objectives = binding.space, binding.objectives
            space = space if space is not None else fallback_space
            objectives = objectives if objectives is not None else fallback_objectives
        if space is None:
            raise ScenarioError("/space", "cannot be resolved: none declared or supplied")
        if objectives is None:
            raise ScenarioError("/objectives", "cannot be resolved: none declared or supplied")

        executor_spec = scenario.executor_spec
        if self._executor is not None:
            # An injected (shared) executor owns its own fault handling; the
            # scenario's faults section applies only to the study-owned stack.
            executor = self._executor
        else:
            assert binding is not None
            fn = binding.fn
            fault_policy = None
            faults_spec = scenario.faults_spec
            if faults_spec is not None:
                # Sub-seeds are derived from the scenario seed so the fault
                # trace (and backoff jitter) is part of the run's identity:
                # same seed -> same faults -> bit-identical history.
                fault_policy = FaultPolicy.from_spec(
                    faults_spec, seed=derive_seed(scenario.seed, "fault-policy")
                )
                inject = faults_spec.get("inject")
                if inject is not None and any(
                    inject[k] > 0
                    for k in ("drop_rate", "delay_rate", "corrupt_rate", "crash_rate")
                ):
                    fn = FaultInjectingEvaluator(
                        fn,
                        drop_rate=inject["drop_rate"],
                        delay_rate=inject["delay_rate"],
                        delay_s=inject["delay_s"],
                        corrupt_rate=inject["corrupt_rate"],
                        crash_rate=inject["crash_rate"],
                        seed=inject["seed"]
                        if inject["seed"] is not None
                        else derive_seed(scenario.seed, "fault-injection"),
                    )
            backend = executor_spec["backend"]
            executor = EvaluationExecutor(
                fn,
                objectives,
                n_workers=executor_spec["n_workers"],
                backend=backend,
                max_evaluations=scenario.budget_spec["max_evaluations"],
                fault_policy=fault_policy,
                transport=executor_spec.get("transport") if backend == "socket" else None,
                broker=self._broker if backend == "socket" else None,
            )

        search_spec = scenario.search_spec
        builder = SEARCH_REGISTRY.get(search_spec["algorithm"])
        ctx = SearchContext(
            space=space,
            objectives=objectives,
            executor=executor,
            spec=search_spec,
            seed=scenario.seed,
            overlap_fraction=executor_spec["overlap_fraction"],
            checkpoint_path=checkpoint_path,
            checkpoint_every=scenario.checkpoint_spec["every"],
            record_sink=record_sink,
            stop_requested=stop_requested,
        )
        return CompiledStudy(
            space=space,
            objectives=objectives,
            executor=executor,
            search=builder(ctx),
            binding=binding,
        )

    # -- execution ------------------------------------------------------------
    def run(
        self,
        run_dir: Optional[Union[str, Path]] = None,
        *,
        resume_from: Optional[str] = None,
        initial_history: Optional[History] = None,
        checkpoint_path: Optional[str] = None,
        stop_requested: Optional[Callable[[], bool]] = None,
    ) -> StudyResult:
        """Execute the study, persisting a run directory when ``run_dir`` is set.

        ``resume_from`` continues from an engine checkpoint file
        (:meth:`Study.resume` derives it from the run directory);
        ``checkpoint_path`` overrides the default
        ``<run_dir>/checkpoints/engine.json`` location for dir-less runs.
        ``stop_requested`` is polled at iteration boundaries: a true return
        parks the run — a resumable checkpoint is written, ``run.json``
        records status ``"parked"``, and :class:`SearchPreempted` propagates
        to the caller (the live service's preemption path).
        """
        run_path = Path(run_dir) if run_dir is not None else None
        writer: Optional[_HistoryWriter] = None
        if run_path is not None:
            run_path.mkdir(parents=True, exist_ok=True)
            (run_path / CHECKPOINT_DIR).mkdir(exist_ok=True)
            self.scenario.save(run_path / SCENARIO_FILE)
            if checkpoint_path is None:
                checkpoint_path = str(run_path / CHECKPOINT_DIR / CHECKPOINT_FILE)
            # A resumed run streams to a side file and only replaces
            # history.jsonl on successful completion (_finalize_run_dir), so
            # a resume that fails — corrupt checkpoint, incompatible seed —
            # cannot destroy the previously persisted history.
            stream_name = HISTORY_FILE if resume_from is None else HISTORY_FILE + ".resume-tmp"
            writer = _HistoryWriter(run_path / stream_name)

        # Compile before touching history.jsonl: a failing compile (unknown
        # plugin, missing host callable, ...) must not destroy the persisted
        # history of an existing run directory.  Records only flow through
        # the sink during search.run, after the writer is opened below.
        compiled = self.compile(
            checkpoint_path=checkpoint_path,
            record_sink=writer.write if writer is not None else None,
            stop_requested=stop_requested,
        )
        if writer is not None:
            assert run_path is not None
            self._write_run_meta(run_path, status="running")
            if resume_from is None:
                # A fresh run into an existing directory must not leave a
                # prior run's artifacts around to be mixed with the new
                # (possibly partial) history if this run is interrupted.
                for stale in (PARETO_FILE, REPORT_FILE):
                    (run_path / stale).unlink(missing_ok=True)
                (run_path / CHECKPOINT_DIR / CHECKPOINT_FILE).unlink(missing_ok=True)
            clean_run_residue(run_path)
            writer.open(truncate=True)
            if resume_from is not None:
                # Re-seed the stream with the checkpoint's history so the
                # file stays coherent while the resumed run appends.
                self._preseed_history(writer, resume_from)
            elif initial_history is not None:
                for record in initial_history.records:
                    writer.write(record)
        n_evals_before = compiled.executor.n_evaluations
        try:
            engine_result: HyperMapperResult = compiled.search.run(
                initial_history=initial_history, resume_from=resume_from
            )
        except SearchPreempted:
            # Parked, not failed: a resumable checkpoint was written at the
            # iteration boundary before the driver raised.  The streamed
            # history stays exactly where a graceful kill would leave it
            # (no torn tail), so Study.resume continues bit-identically.
            if run_path is not None:
                self._write_run_meta(run_path, status="parked")
            raise
        except BaseException:
            if run_path is not None:
                self._write_run_meta(run_path, status="failed")
            raise
        finally:
            if writer is not None:
                writer.close()
            if self._executor is None:
                # The study owns this executor: release its worker pool even
                # when the engine raises, so a crashed study never leaks
                # processes.  Injected (shared) executors are the caller's.
                compiled.executor.close()

        # Executor shape is reported from the executor that actually ran
        # (an injected one may differ from the scenario's executor section).
        engine_info = {
            "algorithm": self.scenario.search_spec["algorithm"],
            "acquisition": compiled.acquisition_name,
            "n_workers": compiled.executor.n_workers,
            "backend": compiled.executor.backend,
            "overlap_fraction": self.scenario.executor_spec["overlap_fraction"],
            # The delta, not the counter: a shared (injected) executor's
            # counter spans every study that ran on it.
            "n_black_box_evaluations": compiled.executor.n_evaluations - n_evals_before,
        }
        result = StudyResult(
            scenario=self.scenario,
            objectives=compiled.objectives,
            history=engine_result.history,
            pareto=apply_constraints(self.scenario, engine_result.pareto),
            iterations=engine_result.iterations,
            space=compiled.space,
            run_dir=run_path,
            engine_info=engine_info,
        )
        if run_path is not None:
            self._finalize_run_dir(run_path, result)
        return result

    @classmethod
    def resume(
        cls,
        run_dir: Union[str, Path],
        *,
        evaluate: Optional[Callable] = None,
        runner: Optional[Any] = None,
        executor: Optional[EvaluationExecutor] = None,
        broker: Optional[Any] = None,
        stop_requested: Optional[Callable[[], bool]] = None,
    ) -> StudyResult:
        """Continue a persisted run from its engine checkpoint.

        A run directory whose checkpoint is already terminal simply replays
        to the identical result; a directory without a checkpoint (killed
        before the bootstrap finished) starts the scenario from scratch.
        ``stop_requested`` lets the resumed run itself be parked again (see
        :meth:`Study.run`).
        """
        run_path = Path(run_dir)
        scenario_path = run_path / SCENARIO_FILE
        if not scenario_path.exists():
            raise FileNotFoundError(f"{run_dir} is not a study run directory (no {SCENARIO_FILE})")
        study = cls(
            Scenario.from_file(scenario_path),
            evaluate=evaluate,
            runner=runner,
            executor=executor,
            broker=broker,
        )
        checkpoint = run_path / CHECKPOINT_DIR / CHECKPOINT_FILE
        resume_from = str(checkpoint) if checkpoint.exists() else None
        return study.run(run_dir=run_path, resume_from=resume_from, stop_requested=stop_requested)

    # -- run-dir plumbing ------------------------------------------------------
    def _write_run_meta(self, run_path: Path, status: str, engine: Optional[Dict] = None) -> None:
        meta = {
            "run_dir_version": RUN_DIR_VERSION,
            "scenario": self.scenario.name,
            "schema_version": self.scenario.schema_version,
            "status": status,
        }
        if engine is not None:
            meta["engine"] = engine
        atomic_write_json(run_path / RUN_FILE, meta)

    def _preseed_history(self, writer: _HistoryWriter, checkpoint_path: str) -> None:
        try:
            payload = json.loads(Path(checkpoint_path).read_text())
        except (OSError, json.JSONDecodeError):
            return
        for d in payload.get("history", []):
            attempts = d.get("attempts")
            writer.write(
                EvaluationRecord(
                    config=_raw_config(d["config"]),
                    metrics={str(k): float(v) for k, v in d["metrics"].items()},
                    source=str(d.get("source", "random")),
                    iteration=int(d.get("iteration", 0)),
                    attempts=None if not attempts else [dict(a) for a in attempts],
                )
            )

    def _finalize_run_dir(self, run_path: Path, result: StudyResult) -> None:
        # The stream already holds every record; rewrite defensively so the
        # file is exactly the final in-memory history (warm starts, resumes
        # and overlap drains included, in history order).
        writer = _HistoryWriter(run_path / HISTORY_FILE)
        writer.rewrite(result.history.records)
        writer.close()
        tmp = run_path / (HISTORY_FILE + ".resume-tmp")
        if tmp.exists():
            tmp.unlink()
        pareto = [r.to_dict() for r in result.pareto]
        atomic_write_json(run_path / PARETO_FILE, pareto)
        atomic_write_json(run_path / REPORT_FILE, result.report())
        status = "degraded" if result.is_degraded else "complete"
        self._write_run_meta(run_path, status=status, engine=result.engine_info)


def _raw_config(d: Mapping[str, Any]):
    from repro.core.space import Configuration

    return Configuration.from_dict(dict(d))


__all__ = [
    "RUN_DIR_VERSION",
    "CompiledStudy",
    "StudyResult",
    "Study",
    "resolve_problem",
    "apply_constraints",
    "run_status",
    "run_residue",
    "clean_run_residue",
    "RESUME_TMP_FILE",
    "make_function_evaluator",
]
