"""Bootstrap-aggregated randomized decision forest regressor.

The paper bootstraps "two separate randomized decision forests" — one
predicting absolute trajectory error and one predicting per-frame runtime —
from a small number of randomly drawn configurations, then refines them with
active learning.  This module provides the forest; the per-objective pairing
lives in :mod:`repro.core.surrogate`.

After :meth:`RandomForestRegressor.fit` the per-tree node arrays are
concatenated into a single :class:`~repro.core.flat_forest.FlatForest` node
table; all batch prediction (``predict`` / ``predict_with_std`` /
``predict_all_trees`` / ``oob_error``) traverses that table in one vectorized
pass instead of looping over trees in Python.

Fitting runs on the histogram engine by default (``splitter="hist"``): the
feature matrix is quantized once by a shared
:class:`~repro.core.tree_builder.BinMapper` (callers owning a static pool can
pass their own mapper and pre-binned rows so nothing is re-quantized across
refits), and bootstrap resamples are per-row integer weight vectors over that
single binned matrix instead of materialized row copies — out-of-bag rows are
simply the rows whose weight is zero.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from repro.core.flat_forest import FlatForest, PoolIndex
from repro.core.tree import DecisionTreeRegressor, MaxFeatures
from repro.core.tree_builder import (
    MAX_BINS,
    BinMapper,
    _NodeArrays,
    grow_forest_hist,
    grow_tree_hist,
)
from repro.utils.rng import RandomState, derive_seed, spawn_generators

#: Worst-case per-level histogram scratch (bytes) above which the histogram
#: path falls back from the single-pass forest grower to per-tree growth.
#: The forest grower's level scratch is 3 statistics x 8 bytes x (frontier
#: slots <= n_trees * n_rows) x n_features x max observed bins; design-space
#: refits (hundreds of rows, tiny bin alphabets) sit orders of magnitude
#: below this, huge exports stay on the threaded per-tree path.  Both paths
#: produce bit-identical trees.
FOREST_SCRATCH_BUDGET_BYTES = 512 << 20


def _resolve_n_jobs(n_jobs: Optional[int], n_tasks: int) -> int:
    import os

    if n_jobs is None:
        return 1
    if n_jobs < 0:
        return max(1, min(os.cpu_count() or 1, n_tasks))
    return max(1, min(int(n_jobs), n_tasks))


def _node_depths(na: _NodeArrays) -> np.ndarray:
    """Per-node depth of a flat node-array tree (root = 0)."""
    depth = np.zeros(na.feature.size, dtype=np.int64)
    frontier = np.array([0], dtype=np.int64)
    level = 0
    while frontier.size:
        internal = frontier[na.feature[frontier] >= 0]
        if internal.size == 0:
            break
        level += 1
        frontier = np.concatenate([na.left[internal], na.right[internal]])
        depth[frontier] = level
    return depth


def _node_stats(na: _NodeArrays) -> List[np.ndarray]:
    """Reconstruct per-node (sw, swy, swy2) from stored mean/count/variance.

    Exact for the integer bootstrap weight vectors the forest fits with
    (``n_samples`` is then the exact weighted count).
    """
    sw = na.n_samples.astype(np.float64)
    swy = na.value * sw
    swy2 = (na.impurity + na.value * na.value) * sw
    return [sw, swy, swy2]


class RandomForestRegressor:
    """Random forest for regression (bagging + per-split feature subsampling).

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf, max_features,
    min_impurity_decrease:
        Passed to each :class:`~repro.core.tree.DecisionTreeRegressor`.
    bootstrap:
        Whether each tree trains on a bootstrap resample of the data.
    splitter:
        Split engine passed to every tree: ``"hist"`` (default, binned
        weight-vector fitting) or ``"exact"`` (reference sort-based search
        on materialized resamples).
    max_bins:
        Per-feature bin budget for the histogram engine.
    n_jobs:
        Trees fitted concurrently (``None``/1 serial, ``-1`` one worker per
        core).  Threads suffice: split search is NumPy-heavy and releases the
        GIL.  Results are identical for any ``n_jobs`` because every tree owns
        an independent, pre-spawned generator.
    random_state:
        Seed for bootstrap draws and feature subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 32,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: MaxFeatures = 0.75,
        min_impurity_decrease: float = 0.0,
        bootstrap: bool = True,
        splitter: str = "hist",
        max_bins: int = MAX_BINS,
        n_jobs: Optional[int] = None,
        random_state: RandomState = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if splitter not in ("hist", "exact"):
            raise ValueError(f"splitter must be 'hist' or 'exact', got {splitter!r}")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.min_impurity_decrease = min_impurity_decrease
        self.bootstrap = bool(bootstrap)
        self.splitter = splitter
        self.max_bins = int(max_bins)
        self.n_jobs = n_jobs
        self.random_state = random_state
        self._trees: List[DecisionTreeRegressor] = []
        self._oob_indices: List[np.ndarray] = []
        self._flat: Optional[FlatForest] = None
        self._X_train: Optional[np.ndarray] = None
        self._y_train: Optional[np.ndarray] = None
        self._n_features: Optional[int] = None
        self._bin_mapper: Optional[BinMapper] = None
        self._binned_train: Optional[np.ndarray] = None
        self._weight_vectors: List[Optional[np.ndarray]] = []
        self._incr: Optional[dict] = None

    # -- fitting ---------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        bin_mapper: Optional[BinMapper] = None,
        prebinned: Optional[np.ndarray] = None,
    ) -> "RandomForestRegressor":
        """Fit the forest on features ``X`` and targets ``y``.

        ``bin_mapper`` (histogram splitter only) supplies a pre-fitted
        :class:`~repro.core.tree_builder.BinMapper` — typically the one cached
        on the active-learning run's encoded pool — and ``prebinned`` the
        matching bin-index rows for ``X``, so repeated refits across
        iterations never re-derive bins or re-quantize anything.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a forest on an empty dataset")
        if prebinned is not None and bin_mapper is None:
            raise ValueError("prebinned rows require the bin_mapper that produced them")
        n = X.shape[0]
        self._n_features = X.shape[1]
        self._X_train = X
        self._y_train = y
        rngs = spawn_generators(self.random_state, self.n_estimators)
        all_idx = np.arange(n)

        hist = self.splitter == "hist"
        if hist:
            mapper = bin_mapper if bin_mapper is not None else BinMapper(self.max_bins).fit(X)
            binned = prebinned if prebinned is not None else mapper.transform(X)
            binned = np.ascontiguousarray(binned, dtype=np.uint8)
            if binned.shape != X.shape:
                raise ValueError("prebinned must have the same shape as X")
            self._bin_mapper = mapper
        else:
            self._bin_mapper = None

        # Draw every bootstrap resample up front (cheap, and keeps the draw
        # order independent of the fitting schedule).  The histogram engine
        # represents each resample as an integer per-row weight vector over
        # the one shared binned matrix; out-of-bag rows are weight == 0.
        sample_indices: List[np.ndarray] = []
        weight_vectors: List[Optional[np.ndarray]] = []
        oob_indices: List[np.ndarray] = []
        for rng in rngs:
            if self.bootstrap and n > 1:
                sample_idx = rng.integers(0, n, size=n)
                weights = np.bincount(sample_idx, minlength=n)
                oob = np.flatnonzero(weights == 0)
            else:
                sample_idx = all_idx
                weights = None
                oob = np.empty(0, dtype=np.int64)
            sample_indices.append(sample_idx)
            weight_vectors.append(weights)
            oob_indices.append(oob)

        trees = [
            DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                min_impurity_decrease=self.min_impurity_decrease,
                splitter=self.splitter,
                max_bins=self.max_bins,
                random_state=rngs[t],
            )
            for t in range(self.n_estimators)
        ]

        if hist and self._forest_grow_fits(n, X.shape[1], mapper):
            # Single-pass path: one frontier over (tree, node) pairs, one
            # histogram scan per level for the whole forest.  Bit-identical
            # to the per-tree path below (equivalence-tested).
            node_arrays = grow_forest_hist(
                binned,
                mapper.bin_thresholds_,
                y,
                weight_vectors,
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                min_impurity_decrease=self.min_impurity_decrease,
                n_feat_per_split=trees[0]._resolve_max_features(X.shape[1]),
                rngs=rngs,
            )
            for tree, na in zip(trees, node_arrays):
                tree.adopt_nodes(na, X.shape[1])
        else:

            def fit_one(t: int) -> DecisionTreeRegressor:
                tree = trees[t]
                if hist:
                    return tree.fit_binned(
                        binned, y, mapper.bin_thresholds_, sample_weight=weight_vectors[t]
                    )
                return tree.fit(X[sample_indices[t]], y[sample_indices[t]])

            workers = _resolve_n_jobs(self.n_jobs, self.n_estimators)
            if workers > 1:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    trees = list(pool.map(fit_one, range(self.n_estimators)))
            else:
                trees = [fit_one(t) for t in range(self.n_estimators)]

        self._trees = trees
        self._oob_indices = oob_indices
        self._flat = FlatForest.from_trees(trees)
        self._binned_train = binned if hist else None
        self._weight_vectors = weight_vectors
        self._incr = None
        return self

    def _forest_grow_fits(self, n: int, d: int, mapper: BinMapper) -> bool:
        """Whether the single-pass forest grower's scratch fits the budget."""
        assert mapper.n_bins_ is not None
        B = int(mapper.n_bins_.max())
        worst = 3 * 8 * self.n_estimators * n * d * B
        return worst <= FOREST_SCRATCH_BUDGET_BYTES

    # -- incremental refit ------------------------------------------------------
    def fit_incremental(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        bin_mapper: Optional[BinMapper] = None,
        prebinned: Optional[np.ndarray] = None,
        leaf_refit_fraction: float = 0.5,
        drift_fraction: float = 0.25,
    ) -> "RandomForestRegressor":
        """Refit by routing only the *appended* rows through the fitted trees.

        ``(X, y)`` must extend the previous training set as a prefix (the
        active-learning loop appends a handful of evaluations per iteration);
        anything else — not fitted yet, exact splitter, a different mapper,
        or a rewritten prefix — falls back to a full :meth:`fit`.

        Per tree: appended rows get deterministic Poisson(1) bootstrap
        weights (online bagging) drawn from a per-tree generator derived from
        ``random_state``, land in their leaves via one batched flat-forest
        traversal, and update those leaves' (weight, weight*y, weight*y^2)
        statistics and values in place.  A leaf whose appended weight is at
        least ``min_samples_split`` *and* exceeds ``leaf_refit_fraction`` of
        its total is re-split by growing a subtree over its rows (the default
        of 0.5 only re-splits leaves whose appended mass rivals what they
        already held — smaller appends update values and leave routing to the
        drift rule, keeping most node tables unchanged); a tree whose cumulative appended weight since its last
        full (re)growth exceeds ``drift_fraction`` of its total — jittered by
        a per-tree seeded factor in [0.75, 1.25) so trees stagger — is
        regrown from scratch on a fresh bootstrap.  All subtree growths (and
        all drift regrowths) across the whole forest are batched into one
        :func:`~repro.core.tree_builder.grow_forest_hist` call each, so a
        refit costs a few histogram passes no matter how many leaves moved.
        Unchanged trees keep identical node tables, which is what the pool
        index's structural-hash leaf cache keys on.

        Results are deterministic (same seed and same call sequence give the
        same forest) but *not* identical to a full refit — this is the
        opt-in fast path behind the surrogate's ``refit="incremental"`` knob.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        prev_X, prev_y = self._X_train, self._y_train
        if (
            not self._trees
            or self.splitter != "hist"
            or prev_X is None
            or prev_y is None
            or self._bin_mapper is None
            or self._binned_train is None
            or (bin_mapper is not None and bin_mapper is not self._bin_mapper)
            or X.ndim != 2
            or X.shape[1] != self._n_features
            or X.shape[0] != y.shape[0]
            or X.shape[0] < prev_X.shape[0]
            or not np.array_equal(X[: prev_X.shape[0]], prev_X)
            or not np.array_equal(y[: prev_y.shape[0]], prev_y)
        ):
            return self.fit(X, y, bin_mapper=bin_mapper, prebinned=prebinned)
        n_prev = prev_X.shape[0]
        n_new = X.shape[0] - n_prev
        if n_new == 0:
            return self

        mapper = self._bin_mapper
        if prebinned is not None:
            binned_new = np.ascontiguousarray(prebinned[n_prev:], dtype=np.uint8)
        else:
            binned_new = mapper.transform(X[n_prev:])
        binned_all = np.vstack([self._binned_train, binned_new])
        y_new = y[n_prev:]
        n_total = X.shape[0]
        d = X.shape[1]
        state = self._incr if self._incr is not None else self._init_incremental_state()
        n_feat_per_split = self._trees[0]._resolve_max_features(d)

        # One batched traversal routes the appended rows through every tree.
        leaf_new_local = self.flat.apply_all(X[n_prev:]) - self.flat.roots[:, None]

        thresholds = mapper.bin_thresholds_
        assert thresholds is not None
        # Phase 1 folds the appended rows into every tree's bookkeeping and
        # only *plans* structure work: drifted trees queue a full regrowth,
        # changed leaves queue a subtree regrowth.  Phase 2 then runs each
        # queue as one batched grow_forest_hist call (every queued subtree is
        # a "tree" over the shared binned matrix whose weight vector masks
        # the other leaves' rows to zero — bit-identical to growing it on the
        # leaf's row subset).
        nodes_of: dict = {}
        regrow: List[Tuple[int, np.ndarray, np.ndarray]] = []  # (tree, weights, oob)
        resplits: List[Tuple[int, int, np.ndarray, int]] = []  # (tree, leaf, weights, seed)
        for t in range(self.n_estimators):
            gen = state["gens"][t]
            if self.bootstrap:
                w_new = gen.poisson(1.0, n_new).astype(np.float64)
            else:
                w_new = np.ones(n_new, dtype=np.float64)
            leaf_t = np.concatenate([state["leaf_of_row"][t], leaf_new_local[t]])
            w_t = np.concatenate([state["W"][t], w_new])
            state["leaf_of_row"][t] = leaf_t
            state["W"][t] = w_t
            state["drift_weight"][t] += float(w_new.sum())
            total_w = float(w_t.sum())

            na = self._trees[t].node_arrays
            sw, swy, swy2 = state["stats"][t]
            n_nodes = na.feature.size
            added = np.bincount(leaf_new_local[t], weights=w_new, minlength=n_nodes)
            drift_limit = drift_fraction * state["jitter"][t] * total_w
            if state["drift_weight"][t] > drift_limit:
                # Structure drift: regrow this tree from scratch on a fresh
                # bootstrap drawn from its incremental stream.
                if self.bootstrap and n_total > 1:
                    draw = gen.integers(0, n_total, size=n_total)
                    w_full = np.bincount(draw, minlength=n_total).astype(np.float64)
                    oob = np.flatnonzero(w_full == 0)
                else:
                    w_full = np.ones(n_total, dtype=np.float64)
                    oob = np.empty(0, dtype=np.int64)
                regrow.append((t, w_full, oob))
                continue

            # Leaf updates: fold the appended weighted rows into their leaves.
            dwy = np.bincount(leaf_new_local[t], weights=w_new * y_new, minlength=n_nodes)
            dwy2 = np.bincount(
                leaf_new_local[t], weights=w_new * y_new * y_new, minlength=n_nodes
            )
            touched = np.flatnonzero(added > 0)
            sw[touched] += added[touched]
            swy[touched] += dwy[touched]
            swy2[touched] += dwy2[touched]
            nodes_of[t] = self._update_leaf_values(na, touched, sw, swy, swy2)

            # Queue re-splits of leaves whose histogram changed past the
            # threshold; each draws a seed from its tree's stream so the
            # batched growth stays deterministic per (seed, call sequence).
            mean = swy[touched] / sw[touched]
            sse = swy2[touched] - swy[touched] * mean
            tol = sw[touched] * (1e-8 + 1e-5 * np.abs(mean)) ** 2
            refit = (
                (added[touched] >= self.min_samples_split)
                & (added[touched] > leaf_refit_fraction * sw[touched])
                & (sw[touched] >= self.min_samples_split)
                & (sse > tol)
            )
            if self.max_depth is not None:
                refit &= state["depths"][t][touched] < self.max_depth
            to_refit = touched[refit]
            if to_refit.size:
                seeds = gen.integers(0, 2**63, size=to_refit.size)
                for leaf, seed in zip(to_refit, seeds):
                    w_leaf = np.where(leaf_t == leaf, w_t, 0.0)
                    if np.any(w_leaf > 0):
                        resplits.append((t, int(leaf), w_leaf, int(seed)))
            if self.bootstrap:
                new_oob = n_prev + np.flatnonzero(w_new == 0)
                self._oob_indices[t] = np.concatenate([self._oob_indices[t], new_oob])

        if regrow:
            regrown = self._grow_batch(
                binned_all,
                thresholds,
                y,
                [w for _, w, _ in regrow],
                [state["gens"][t] for t, _, _ in regrow],
                self.max_depth,
                n_feat_per_split,
                mapper,
            )
            for (t, w_full, oob), nodes in zip(regrow, regrown):
                self._trees[t].adopt_nodes(nodes, d)
                state["stats"][t] = _node_stats(nodes)
                state["depths"][t] = _node_depths(nodes)
                state["leaf_of_row"][t] = DecisionTreeRegressor._apply_nodes(nodes, X)
                state["W"][t] = w_full
                state["drift_weight"][t] = 0.0
                self._oob_indices[t] = oob

        if resplits:
            if self.max_depth is None:
                subs = self._grow_batch(
                    binned_all,
                    thresholds,
                    y,
                    [w for _, _, w, _ in resplits],
                    [np.random.default_rng(s) for _, _, _, s in resplits],
                    None,
                    n_feat_per_split,
                    mapper,
                )
            else:
                # Depth caps are per-leaf (remaining depth below the leaf),
                # which the batched grower cannot express; grow one at a time.
                subs = [
                    grow_tree_hist(
                        binned_all,
                        thresholds,
                        y,
                        w_leaf,
                        max_depth=self.max_depth - int(state["depths"][t][leaf]),
                        min_samples_split=self.min_samples_split,
                        min_samples_leaf=self.min_samples_leaf,
                        min_impurity_decrease=self.min_impurity_decrease,
                        n_feat_per_split=n_feat_per_split,
                        rng=np.random.default_rng(seed),
                    )
                    for t, leaf, w_leaf, seed in resplits
                ]
            for (t, leaf, _, _), sub in zip(resplits, subs):
                nodes_of[t] = self._splice_subtree(t, leaf, nodes_of[t], state, X, sub)

        # Value-only updates mutate each tree's arrays in place; only trees
        # whose structure changed (splices swap in fresh arrays) re-adopt.
        structure_changed = bool(regrow)
        for t, nodes in nodes_of.items():
            if nodes is not self._trees[t].node_arrays:
                self._trees[t].adopt_nodes(nodes, d)
                structure_changed = True

        self._X_train = X
        self._y_train = y
        self._binned_train = binned_all
        if structure_changed or self._flat is None:
            self._flat = FlatForest.from_trees(self._trees)
        else:
            # Same routing everywhere: refresh leaf values in place and keep
            # the node table (and its structural hashes) intact.
            self._flat.value[:] = np.concatenate(
                [tree.node_arrays.value for tree in self._trees]
            )
        self._incr = state
        return self

    def _grow_batch(
        self,
        binned: np.ndarray,
        thresholds,
        y: np.ndarray,
        weights: List[np.ndarray],
        rngs: List,
        max_depth: Optional[int],
        n_feat_per_split: int,
        mapper: BinMapper,
    ) -> List[_NodeArrays]:
        """Grow a batch of (sub)trees, single-pass when scratch fits the budget."""
        assert mapper.n_bins_ is not None
        B = int(mapper.n_bins_.max())
        worst = 3 * 8 * len(weights) * binned.shape[0] * binned.shape[1] * B
        common = dict(
            max_depth=max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            min_impurity_decrease=self.min_impurity_decrease,
            n_feat_per_split=n_feat_per_split,
        )
        if worst <= FOREST_SCRATCH_BUDGET_BYTES:
            return grow_forest_hist(
                binned, thresholds, y, weights, rngs=rngs, **common
            )
        return [
            grow_tree_hist(binned, thresholds, y, w, rng=r, **common)
            for w, r in zip(weights, rngs)
        ]

    def _init_incremental_state(self) -> dict:
        """Lazily build the per-tree bookkeeping the first incremental call needs."""
        assert self._X_train is not None
        n = self._X_train.shape[0]
        T = self.n_estimators
        W = [
            np.ones(n, dtype=np.float64) if wv is None else np.asarray(wv, dtype=np.float64)
            for wv in (self._weight_vectors or [None] * T)
        ]
        stats = [_node_stats(tree.node_arrays) for tree in self._trees]
        depths = [_node_depths(tree.node_arrays) for tree in self._trees]
        leaf_global = self.flat.apply_all(self._X_train)
        leaf_of_row = [leaf_global[t] - int(self.flat.roots[t]) for t in range(T)]
        base = self.random_state
        if base is None or isinstance(base, (int, np.integer)):
            seed: RandomState = derive_seed(base, "incremental-refit")
        else:  # non-reproducible seeds stay non-reproducible
            seed = None
        gens = list(spawn_generators(seed, T))
        jitter = np.array([0.75 + 0.5 * g.random() for g in gens])
        return {
            "gens": gens,
            "jitter": jitter,
            "drift_weight": np.zeros(T, dtype=np.float64),
            "stats": stats,
            "depths": depths,
            "leaf_of_row": leaf_of_row,
            "W": W,
        }

    @staticmethod
    def _update_leaf_values(
        na: _NodeArrays,
        touched: np.ndarray,
        sw: np.ndarray,
        swy: np.ndarray,
        swy2: np.ndarray,
    ) -> _NodeArrays:
        """Recompute value/count/impurity of the touched nodes in place."""
        mean = swy[touched] / sw[touched]
        na.value[touched] = mean
        na.n_samples[touched] = np.round(sw[touched]).astype(np.int64)
        na.impurity[touched] = np.maximum(swy2[touched] / sw[touched] - mean * mean, 0.0)
        return na

    def _splice_subtree(
        self,
        t: int,
        leaf: int,
        na: _NodeArrays,
        state: dict,
        X_all: np.ndarray,
        sub: _NodeArrays,
    ) -> _NodeArrays:
        """Replace one leaf with a freshly grown subtree (bookkeeping included)."""
        if sub.feature.size == 1:  # the refreshed leaf did not split after all
            return na
        leaf_t = state["leaf_of_row"][t]
        w_t = state["W"][t]
        rows = np.flatnonzero((leaf_t == leaf) & (w_t > 0))
        depth_l = int(state["depths"][t][leaf])
        base = na.feature.size

        def remap(ids: np.ndarray) -> np.ndarray:
            # Sub-tree node 0 replaces the leaf; nodes 1.. append at `base`.
            return np.where(ids > 0, base + ids - 1, np.where(ids == 0, leaf, -1))

        feature = np.concatenate([na.feature, sub.feature[1:]])
        threshold = np.concatenate([na.threshold, sub.threshold[1:]])
        left = np.concatenate([na.left, remap(sub.left[1:])])
        right = np.concatenate([na.right, remap(sub.right[1:])])
        value = np.concatenate([na.value, sub.value[1:]])
        n_samples = np.concatenate([na.n_samples, sub.n_samples[1:]])
        impurity = np.concatenate([na.impurity, sub.impurity[1:]])
        feature[leaf] = sub.feature[0]
        threshold[leaf] = sub.threshold[0]
        left[leaf] = remap(sub.left[:1])[0]
        right[leaf] = remap(sub.right[:1])[0]
        value[leaf] = sub.value[0]
        n_samples[leaf] = sub.n_samples[0]
        impurity[leaf] = sub.impurity[0]
        merged = _NodeArrays(
            feature=feature,
            threshold=threshold,
            left=left,
            right=right,
            value=value,
            n_samples=n_samples,
            impurity=impurity,
        )
        # Extend the bookkeeping: stats, depths, and row->leaf assignments.
        sub_stats = _node_stats(sub)
        sw, swy, swy2 = state["stats"][t]
        for full, part in zip((sw, swy, swy2), sub_stats):
            part0 = part[0]
            full[leaf] = part0
        state["stats"][t] = [
            np.concatenate([sw, sub_stats[0][1:]]),
            np.concatenate([swy, sub_stats[1][1:]]),
            np.concatenate([swy2, sub_stats[2][1:]]),
        ]
        sub_depths = _node_depths(sub)
        state["depths"][t] = np.concatenate(
            [state["depths"][t], depth_l + sub_depths[1:]]
        )
        sub_leaf = DecisionTreeRegressor._apply_nodes(sub, X_all[rows])
        leaf_t[rows] = np.where(sub_leaf > 0, base + sub_leaf - 1, leaf)
        return merged

    # -- prediction -----------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean prediction over all trees."""
        return self.flat.predict(X)

    def predict_with_std(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Mean and across-tree standard deviation of the prediction.

        The dispersion across trees is a cheap epistemic-uncertainty proxy used
        by the uncertainty-weighted active-learning variant (an extension over
        the paper's plain Pareto-proximity sampling).
        """
        return self.flat.predict_with_std(X)

    def predict_all_trees(self, X: np.ndarray) -> np.ndarray:
        """Per-tree predictions as an ``(n_estimators, n_samples)`` matrix."""
        return self.flat.predict_all(X)

    def predict_indexed(self, index: "PoolIndex") -> np.ndarray:
        """Mean prediction over a pre-indexed static pool (bitset kernel)."""
        return self.flat.predict_indexed(index)

    def predict_with_std_indexed(self, index: "PoolIndex") -> Tuple[np.ndarray, np.ndarray]:
        """Mean/std prediction over a pre-indexed static pool (bitset kernel)."""
        return self.flat.predict_with_std_indexed(index)

    # -- quality metrics ---------------------------------------------------------
    def oob_error(self) -> float:
        """Out-of-bag mean squared error (``nan`` when bootstrap is disabled)."""
        self._require_fitted()
        if not self.bootstrap or self._X_train is None or self._y_train is None:
            return float("nan")
        n = self._X_train.shape[0]
        # One flat traversal of the whole training set replaces per-tree
        # predictions on each tree's out-of-bag subset.
        preds = self.flat.predict_all(self._X_train)
        sums = np.zeros(n, dtype=np.float64)
        counts = np.zeros(n, dtype=np.int64)
        for t, oob in enumerate(self._oob_indices):
            if oob.size == 0:
                continue
            sums[oob] += preds[t, oob]
            counts[oob] += 1
        covered = counts > 0
        if not np.any(covered):
            return float("nan")
        oob_pred = sums[covered] / counts[covered]
        return float(np.mean((oob_pred - self._y_train[covered]) ** 2))

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R^2 on ``(X, y)``."""
        y = np.asarray(y, dtype=np.float64).ravel()
        pred = self.predict(X)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        if ss_tot == 0.0:
            return 1.0 if ss_res == 0.0 else 0.0
        return 1.0 - ss_res / ss_tot

    def feature_importances(self) -> np.ndarray:
        """Mean impurity-decrease importances across trees."""
        self._require_fitted()
        importances = np.mean([t.feature_importances() for t in self._trees], axis=0)
        s = importances.sum()
        if s > 0:
            importances = importances / s
        return importances

    @property
    def trees(self) -> List[DecisionTreeRegressor]:
        """Fitted trees (read-only view)."""
        self._require_fitted()
        return list(self._trees)

    @property
    def flat(self) -> FlatForest:
        """The flattened node table used for batched inference."""
        self._require_fitted()
        assert self._flat is not None
        return self._flat

    @property
    def bin_mapper(self) -> Optional[BinMapper]:
        """The bin mapper used by the histogram engine (``None`` for exact)."""
        self._require_fitted()
        return self._bin_mapper

    @property
    def n_features(self) -> int:
        """Number of input features seen during :meth:`fit`."""
        self._require_fitted()
        assert self._n_features is not None
        return self._n_features

    # -- internals -----------------------------------------------------------
    def _require_fitted(self) -> None:
        if not self._trees:
            raise RuntimeError("this RandomForestRegressor is not fitted yet")


__all__ = ["RandomForestRegressor"]
