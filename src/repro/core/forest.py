"""Bootstrap-aggregated randomized decision forest regressor.

The paper bootstraps "two separate randomized decision forests" — one
predicting absolute trajectory error and one predicting per-frame runtime —
from a small number of randomly drawn configurations, then refines them with
active learning.  This module provides the forest; the per-objective pairing
lives in :mod:`repro.core.surrogate`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.tree import DecisionTreeRegressor, MaxFeatures
from repro.utils.rng import RandomState, as_generator, spawn_generators


class RandomForestRegressor:
    """Random forest for regression (bagging + per-split feature subsampling).

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf, max_features,
    min_impurity_decrease:
        Passed to each :class:`~repro.core.tree.DecisionTreeRegressor`.
    bootstrap:
        Whether each tree trains on a bootstrap resample of the data.
    random_state:
        Seed for bootstrap draws and feature subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 32,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: MaxFeatures = 0.75,
        min_impurity_decrease: float = 0.0,
        bootstrap: bool = True,
        random_state: RandomState = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.min_impurity_decrease = min_impurity_decrease
        self.bootstrap = bool(bootstrap)
        self.random_state = random_state
        self._trees: List[DecisionTreeRegressor] = []
        self._oob_indices: List[np.ndarray] = []
        self._X_train: Optional[np.ndarray] = None
        self._y_train: Optional[np.ndarray] = None
        self._n_features: Optional[int] = None

    # -- fitting ---------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        """Fit the forest on features ``X`` and targets ``y``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a forest on an empty dataset")
        n = X.shape[0]
        self._n_features = X.shape[1]
        self._X_train = X
        self._y_train = y
        rngs = spawn_generators(self.random_state, self.n_estimators)
        self._trees = []
        self._oob_indices = []
        all_idx = np.arange(n)
        for t, rng in enumerate(rngs):
            if self.bootstrap and n > 1:
                sample_idx = rng.integers(0, n, size=n)
                oob = np.setdiff1d(all_idx, np.unique(sample_idx), assume_unique=False)
            else:
                sample_idx = all_idx
                oob = np.empty(0, dtype=np.int64)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                min_impurity_decrease=self.min_impurity_decrease,
                random_state=rng,
            )
            tree.fit(X[sample_idx], y[sample_idx])
            self._trees.append(tree)
            self._oob_indices.append(oob)
        return self

    # -- prediction -----------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean prediction over all trees."""
        return self.predict_with_std(X)[0]

    def predict_with_std(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Mean and across-tree standard deviation of the prediction.

        The dispersion across trees is a cheap epistemic-uncertainty proxy used
        by the uncertainty-weighted active-learning variant (an extension over
        the paper's plain Pareto-proximity sampling).
        """
        self._require_fitted()
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        preds = np.empty((len(self._trees), X.shape[0]), dtype=np.float64)
        for i, tree in enumerate(self._trees):
            preds[i] = tree.predict(X)
        return preds.mean(axis=0), preds.std(axis=0)

    def predict_all_trees(self, X: np.ndarray) -> np.ndarray:
        """Per-tree predictions as an ``(n_estimators, n_samples)`` matrix."""
        self._require_fitted()
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return np.stack([tree.predict(X) for tree in self._trees], axis=0)

    # -- quality metrics ---------------------------------------------------------
    def oob_error(self) -> float:
        """Out-of-bag mean squared error (``nan`` when bootstrap is disabled)."""
        self._require_fitted()
        if not self.bootstrap or self._X_train is None or self._y_train is None:
            return float("nan")
        n = self._X_train.shape[0]
        sums = np.zeros(n, dtype=np.float64)
        counts = np.zeros(n, dtype=np.int64)
        for tree, oob in zip(self._trees, self._oob_indices):
            if oob.size == 0:
                continue
            sums[oob] += tree.predict(self._X_train[oob])
            counts[oob] += 1
        covered = counts > 0
        if not np.any(covered):
            return float("nan")
        preds = sums[covered] / counts[covered]
        return float(np.mean((preds - self._y_train[covered]) ** 2))

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R^2 on ``(X, y)``."""
        y = np.asarray(y, dtype=np.float64).ravel()
        pred = self.predict(X)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        if ss_tot == 0.0:
            return 1.0 if ss_res == 0.0 else 0.0
        return 1.0 - ss_res / ss_tot

    def feature_importances(self) -> np.ndarray:
        """Mean impurity-decrease importances across trees."""
        self._require_fitted()
        importances = np.mean([t.feature_importances() for t in self._trees], axis=0)
        s = importances.sum()
        if s > 0:
            importances = importances / s
        return importances

    @property
    def trees(self) -> List[DecisionTreeRegressor]:
        """Fitted trees (read-only view)."""
        self._require_fitted()
        return list(self._trees)

    @property
    def n_features(self) -> int:
        """Number of input features seen during :meth:`fit`."""
        self._require_fitted()
        assert self._n_features is not None
        return self._n_features

    # -- internals -----------------------------------------------------------
    def _require_fitted(self) -> None:
        if not self._trees:
            raise RuntimeError("this RandomForestRegressor is not fitted yet")


__all__ = ["RandomForestRegressor"]
