"""Bootstrap-aggregated randomized decision forest regressor.

The paper bootstraps "two separate randomized decision forests" — one
predicting absolute trajectory error and one predicting per-frame runtime —
from a small number of randomly drawn configurations, then refines them with
active learning.  This module provides the forest; the per-objective pairing
lives in :mod:`repro.core.surrogate`.

After :meth:`RandomForestRegressor.fit` the per-tree node arrays are
concatenated into a single :class:`~repro.core.flat_forest.FlatForest` node
table; all batch prediction (``predict`` / ``predict_with_std`` /
``predict_all_trees`` / ``oob_error``) traverses that table in one vectorized
pass instead of looping over trees in Python.

Fitting runs on the histogram engine by default (``splitter="hist"``): the
feature matrix is quantized once by a shared
:class:`~repro.core.tree_builder.BinMapper` (callers owning a static pool can
pass their own mapper and pre-binned rows so nothing is re-quantized across
refits), and bootstrap resamples are per-row integer weight vectors over that
single binned matrix instead of materialized row copies — out-of-bag rows are
simply the rows whose weight is zero.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from repro.core.flat_forest import FlatForest, PoolIndex
from repro.core.tree import DecisionTreeRegressor, MaxFeatures
from repro.core.tree_builder import MAX_BINS, BinMapper
from repro.utils.rng import RandomState, spawn_generators


def _resolve_n_jobs(n_jobs: Optional[int], n_tasks: int) -> int:
    import os

    if n_jobs is None:
        return 1
    if n_jobs < 0:
        return max(1, min(os.cpu_count() or 1, n_tasks))
    return max(1, min(int(n_jobs), n_tasks))


class RandomForestRegressor:
    """Random forest for regression (bagging + per-split feature subsampling).

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf, max_features,
    min_impurity_decrease:
        Passed to each :class:`~repro.core.tree.DecisionTreeRegressor`.
    bootstrap:
        Whether each tree trains on a bootstrap resample of the data.
    splitter:
        Split engine passed to every tree: ``"hist"`` (default, binned
        weight-vector fitting) or ``"exact"`` (reference sort-based search
        on materialized resamples).
    max_bins:
        Per-feature bin budget for the histogram engine.
    n_jobs:
        Trees fitted concurrently (``None``/1 serial, ``-1`` one worker per
        core).  Threads suffice: split search is NumPy-heavy and releases the
        GIL.  Results are identical for any ``n_jobs`` because every tree owns
        an independent, pre-spawned generator.
    random_state:
        Seed for bootstrap draws and feature subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 32,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: MaxFeatures = 0.75,
        min_impurity_decrease: float = 0.0,
        bootstrap: bool = True,
        splitter: str = "hist",
        max_bins: int = MAX_BINS,
        n_jobs: Optional[int] = None,
        random_state: RandomState = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if splitter not in ("hist", "exact"):
            raise ValueError(f"splitter must be 'hist' or 'exact', got {splitter!r}")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.min_impurity_decrease = min_impurity_decrease
        self.bootstrap = bool(bootstrap)
        self.splitter = splitter
        self.max_bins = int(max_bins)
        self.n_jobs = n_jobs
        self.random_state = random_state
        self._trees: List[DecisionTreeRegressor] = []
        self._oob_indices: List[np.ndarray] = []
        self._flat: Optional[FlatForest] = None
        self._X_train: Optional[np.ndarray] = None
        self._y_train: Optional[np.ndarray] = None
        self._n_features: Optional[int] = None
        self._bin_mapper: Optional[BinMapper] = None

    # -- fitting ---------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        bin_mapper: Optional[BinMapper] = None,
        prebinned: Optional[np.ndarray] = None,
    ) -> "RandomForestRegressor":
        """Fit the forest on features ``X`` and targets ``y``.

        ``bin_mapper`` (histogram splitter only) supplies a pre-fitted
        :class:`~repro.core.tree_builder.BinMapper` — typically the one cached
        on the active-learning run's encoded pool — and ``prebinned`` the
        matching bin-index rows for ``X``, so repeated refits across
        iterations never re-derive bins or re-quantize anything.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a forest on an empty dataset")
        if prebinned is not None and bin_mapper is None:
            raise ValueError("prebinned rows require the bin_mapper that produced them")
        n = X.shape[0]
        self._n_features = X.shape[1]
        self._X_train = X
        self._y_train = y
        rngs = spawn_generators(self.random_state, self.n_estimators)
        all_idx = np.arange(n)

        hist = self.splitter == "hist"
        if hist:
            mapper = bin_mapper if bin_mapper is not None else BinMapper(self.max_bins).fit(X)
            binned = prebinned if prebinned is not None else mapper.transform(X)
            binned = np.ascontiguousarray(binned, dtype=np.uint8)
            if binned.shape != X.shape:
                raise ValueError("prebinned must have the same shape as X")
            self._bin_mapper = mapper
        else:
            self._bin_mapper = None

        # Draw every bootstrap resample up front (cheap, and keeps the draw
        # order independent of the fitting schedule).  The histogram engine
        # represents each resample as an integer per-row weight vector over
        # the one shared binned matrix; out-of-bag rows are weight == 0.
        sample_indices: List[np.ndarray] = []
        weight_vectors: List[Optional[np.ndarray]] = []
        oob_indices: List[np.ndarray] = []
        for rng in rngs:
            if self.bootstrap and n > 1:
                sample_idx = rng.integers(0, n, size=n)
                weights = np.bincount(sample_idx, minlength=n)
                oob = np.flatnonzero(weights == 0)
            else:
                sample_idx = all_idx
                weights = None
                oob = np.empty(0, dtype=np.int64)
            sample_indices.append(sample_idx)
            weight_vectors.append(weights)
            oob_indices.append(oob)

        def fit_one(t: int) -> DecisionTreeRegressor:
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                min_impurity_decrease=self.min_impurity_decrease,
                splitter=self.splitter,
                max_bins=self.max_bins,
                random_state=rngs[t],
            )
            if hist:
                return tree.fit_binned(
                    binned, y, mapper.bin_thresholds_, sample_weight=weight_vectors[t]
                )
            return tree.fit(X[sample_indices[t]], y[sample_indices[t]])

        workers = _resolve_n_jobs(self.n_jobs, self.n_estimators)
        if workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                trees = list(pool.map(fit_one, range(self.n_estimators)))
        else:
            trees = [fit_one(t) for t in range(self.n_estimators)]

        self._trees = trees
        self._oob_indices = oob_indices
        self._flat = FlatForest.from_trees(trees)
        return self

    # -- prediction -----------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean prediction over all trees."""
        return self.flat.predict(X)

    def predict_with_std(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Mean and across-tree standard deviation of the prediction.

        The dispersion across trees is a cheap epistemic-uncertainty proxy used
        by the uncertainty-weighted active-learning variant (an extension over
        the paper's plain Pareto-proximity sampling).
        """
        return self.flat.predict_with_std(X)

    def predict_all_trees(self, X: np.ndarray) -> np.ndarray:
        """Per-tree predictions as an ``(n_estimators, n_samples)`` matrix."""
        return self.flat.predict_all(X)

    def predict_indexed(self, index: "PoolIndex") -> np.ndarray:
        """Mean prediction over a pre-indexed static pool (bitset kernel)."""
        return self.flat.predict_indexed(index)

    def predict_with_std_indexed(self, index: "PoolIndex") -> Tuple[np.ndarray, np.ndarray]:
        """Mean/std prediction over a pre-indexed static pool (bitset kernel)."""
        return self.flat.predict_with_std_indexed(index)

    # -- quality metrics ---------------------------------------------------------
    def oob_error(self) -> float:
        """Out-of-bag mean squared error (``nan`` when bootstrap is disabled)."""
        self._require_fitted()
        if not self.bootstrap or self._X_train is None or self._y_train is None:
            return float("nan")
        n = self._X_train.shape[0]
        # One flat traversal of the whole training set replaces per-tree
        # predictions on each tree's out-of-bag subset.
        preds = self.flat.predict_all(self._X_train)
        sums = np.zeros(n, dtype=np.float64)
        counts = np.zeros(n, dtype=np.int64)
        for t, oob in enumerate(self._oob_indices):
            if oob.size == 0:
                continue
            sums[oob] += preds[t, oob]
            counts[oob] += 1
        covered = counts > 0
        if not np.any(covered):
            return float("nan")
        oob_pred = sums[covered] / counts[covered]
        return float(np.mean((oob_pred - self._y_train[covered]) ** 2))

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R^2 on ``(X, y)``."""
        y = np.asarray(y, dtype=np.float64).ravel()
        pred = self.predict(X)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        if ss_tot == 0.0:
            return 1.0 if ss_res == 0.0 else 0.0
        return 1.0 - ss_res / ss_tot

    def feature_importances(self) -> np.ndarray:
        """Mean impurity-decrease importances across trees."""
        self._require_fitted()
        importances = np.mean([t.feature_importances() for t in self._trees], axis=0)
        s = importances.sum()
        if s > 0:
            importances = importances / s
        return importances

    @property
    def trees(self) -> List[DecisionTreeRegressor]:
        """Fitted trees (read-only view)."""
        self._require_fitted()
        return list(self._trees)

    @property
    def flat(self) -> FlatForest:
        """The flattened node table used for batched inference."""
        self._require_fitted()
        assert self._flat is not None
        return self._flat

    @property
    def bin_mapper(self) -> Optional[BinMapper]:
        """The bin mapper used by the histogram engine (``None`` for exact)."""
        self._require_fitted()
        return self._bin_mapper

    @property
    def n_features(self) -> int:
        """Number of input features seen during :meth:`fit`."""
        self._require_fitted()
        assert self._n_features is not None
        return self._n_features

    # -- internals -----------------------------------------------------------
    def _require_fitted(self) -> None:
        if not self._trees:
            raise RuntimeError("this RandomForestRegressor is not fitted yet")


__all__ = ["RandomForestRegressor"]
