"""Design space: an ordered collection of parameters plus encode/decode helpers.

A *configuration* is an assignment of one value to every parameter of the
space.  Configurations are represented as :class:`Configuration`, a thin
immutable mapping that hashes by its value tuple so sets/dicts of
configurations (needed by Algorithm 1's ``P - X_out`` set difference) work out
of the box.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.parameters import (
    IntegerParameter,
    Parameter,
    RealParameter,
    parameter_from_dict,
)
from repro.utils.rng import RandomState, as_generator


class Configuration(Mapping[str, Any]):
    """Immutable mapping from parameter name to value.

    Hashable (by the ordered tuple of its values) so it can be stored in sets,
    which is how the optimizer computes the set difference between the
    predicted Pareto front and the already-evaluated samples.
    """

    __slots__ = ("_names", "_values", "_hash", "_index")

    # Name→position lookup tables shared by every configuration with the same
    # name tuple (one per design space in practice), so ``__getitem__`` is a
    # dict hit instead of an O(n) ``tuple.index`` scan.
    _INDEX_CACHE: Dict[Tuple[str, ...], Dict[str, int]] = {}

    def __init__(self, names: Sequence[str], values: Sequence[Any]) -> None:
        if len(names) != len(values):
            raise ValueError("names and values must have the same length")
        self._names: Tuple[str, ...] = tuple(names)
        self._values: Tuple[Any, ...] = tuple(values)
        self._hash = hash((self._names, self._values))
        index = Configuration._INDEX_CACHE.get(self._names)
        if index is None:
            index = {n: i for i, n in enumerate(self._names)}
            Configuration._INDEX_CACHE[self._names] = index
        self._index = index

    @classmethod
    def from_dict(cls, d: Mapping[str, Any], order: Optional[Sequence[str]] = None) -> "Configuration":
        """Build a configuration from a mapping, optionally reordering keys."""
        names = list(order) if order is not None else list(d.keys())
        missing = [n for n in names if n not in d]
        if missing:
            raise KeyError(f"missing parameter values: {missing}")
        return cls(names, [d[n] for n in names])

    # Mapping protocol -------------------------------------------------------
    def __getitem__(self, key: str) -> Any:
        try:
            return self._values[self._index[key]]
        except KeyError:
            raise KeyError(key) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    # Identity ----------------------------------------------------------------
    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Configuration):
            return self._names == other._names and self._values == other._values
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        inner = ", ".join(f"{n}={v!r}" for n, v in zip(self._names, self._values))
        return f"Configuration({inner})"

    # Convenience ---------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        """Parameter names in space order."""
        return self._names

    @property
    def values_tuple(self) -> Tuple[Any, ...]:
        """Parameter values in space order."""
        return self._values

    def to_dict(self) -> Dict[str, Any]:
        """Plain dict copy."""
        return dict(zip(self._names, self._values))

    def replace(self, **updates: Any) -> "Configuration":
        """Return a copy with some values replaced."""
        d = self.to_dict()
        unknown = [k for k in updates if k not in d]
        if unknown:
            raise KeyError(f"unknown parameters: {unknown}")
        d.update(updates)
        return Configuration(self._names, [d[n] for n in self._names])

    @classmethod
    def batch(
        cls, names: Sequence[str], value_rows: Iterable[Tuple[Any, ...]]
    ) -> List["Configuration"]:
        """Build many configurations sharing one name tuple in one pass.

        The fast path behind columnar enumeration: the name tuple and its
        name→position table are resolved once, then each instance is stamped
        out directly — roughly half the cost of ``Configuration(...)`` per
        row, which matters when materializing 10^5–10^6 pool members.
        """
        names_t = tuple(names)
        index = cls._INDEX_CACHE.get(names_t)
        if index is None:
            index = {n: i for i, n in enumerate(names_t)}
            cls._INDEX_CACHE[names_t] = index
        out: List[Configuration] = []
        for values in value_rows:
            c = object.__new__(cls)
            c._names = names_t
            c._values = values
            c._hash = hash((names_t, values))
            c._index = index
            out.append(c)
        return out


class DesignSpace:
    """An ordered collection of :class:`Parameter` objects.

    Responsibilities:

    * enumerate / sample configurations,
    * validate configurations,
    * encode configurations into the numeric feature matrix used by the
      random-forest surrogate (ordinal parameters keep their value, categorical
      parameters are one-hot encoded),
    * report the total cardinality of the space (the paper reports roughly
      1.8 M configurations for KFusion and 450 K for ElasticFusion).
    """

    def __init__(self, parameters: Sequence[Parameter], name: str = "space") -> None:
        if len(parameters) == 0:
            raise ValueError("a design space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names in design space: {names}")
        self.name = name
        self._parameters: List[Parameter] = list(parameters)
        self._by_name: Dict[str, Parameter] = {p.name: p for p in parameters}
        self._param_names: Tuple[str, ...] = tuple(p.name for p in parameters)
        self._feature_names: List[str] = []
        self._feature_slices: Dict[str, slice] = {}
        self._encode_luts: Dict[str, Optional[Dict[Any, float]]] = {}
        offset = 0
        for p in self._parameters:
            if p.is_categorical:
                k = int(p.cardinality)
                self._feature_slices[p.name] = slice(offset, offset + k)
                self._feature_names.extend(f"{p.name}=={v!r}" for v in p.values())
                offset += k
            else:
                self._feature_slices[p.name] = slice(offset, offset + 1)
                self._feature_names.append(p.name)
                offset += 1
            self._encode_luts[p.name] = self._build_encode_lut(p)
        self._n_features = offset

    @staticmethod
    def _build_encode_lut(p: Parameter) -> Optional[Dict[Any, float]]:
        """Value → encoded-feature lookup table for a discrete parameter.

        Categorical parameters map to their one-hot column index, other
        discrete parameters to their numeric feature value.  Parameters with
        continuous or very large domains — or unhashable values (categorical
        choices may be arbitrary objects) — return ``None`` and are encoded
        via the per-value fallback instead.
        """
        try:
            if p.is_categorical:
                return {v: float(i) for i, v in enumerate(p.values())}
            if p.is_discrete and p.cardinality <= 4096:
                return {v: float(p.to_numeric(v)) for v in p.values()}
        except TypeError:  # unhashable domain values
            return None
        return None

    # -- basic introspection -------------------------------------------------
    @classmethod
    def from_specs(cls, specs: Iterable[dict], name: str = "space") -> "DesignSpace":
        """Build a space from plain-dict parameter specifications."""
        return cls([parameter_from_dict(s) for s in specs], name=name)

    def to_dicts(self) -> List[dict]:
        """Parameter specifications, the exact inverse of :meth:`from_specs`.

        ``DesignSpace.from_specs(space.to_dicts(), name=space.name)`` rebuilds
        an equal space: each entry round-trips through
        :func:`~repro.core.parameters.parameter_from_dict`.
        """
        return [p.to_dict() for p in self._parameters]

    def to_dict(self) -> dict:
        """JSON-facing space description (``name`` + parameter specs)."""
        return {"name": self.name, "parameters": self.to_dicts()}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "DesignSpace":
        """Inverse of :meth:`to_dict`."""
        return cls.from_specs(d["parameters"], name=d.get("name", "space"))

    @property
    def parameters(self) -> List[Parameter]:
        """Parameters in declaration order."""
        return list(self._parameters)

    @property
    def parameter_names(self) -> List[str]:
        """Names in declaration order."""
        return [p.name for p in self._parameters]

    @property
    def dimension(self) -> int:
        """Number of parameters."""
        return len(self._parameters)

    @property
    def n_features(self) -> int:
        """Number of numeric features produced by :meth:`encode`."""
        return self._n_features

    @property
    def feature_names(self) -> List[str]:
        """Names of the encoded feature columns."""
        return list(self._feature_names)

    def __getitem__(self, name: str) -> Parameter:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._parameters)

    @property
    def cardinality(self) -> float:
        """Total number of configurations (``inf`` if any parameter is continuous)."""
        total = 1.0
        for p in self._parameters:
            total *= p.cardinality
            if math.isinf(total):
                return math.inf
        return total

    @property
    def is_enumerable(self) -> bool:
        """Whether :meth:`enumerate` terminates."""
        return math.isfinite(self.cardinality)

    # -- configuration construction -------------------------------------------
    def configuration(self, values: Mapping[str, Any]) -> Configuration:
        """Build and validate a configuration from a mapping."""
        missing = [p.name for p in self._parameters if p.name not in values]
        if missing:
            raise KeyError(f"missing values for parameters: {missing}")
        extra = [k for k in values if k not in self._by_name]
        if extra:
            raise KeyError(f"unknown parameters: {extra}")
        ordered = []
        for p in self._parameters:
            ordered.append(p.validate(values[p.name]))
        return Configuration(self.parameter_names, ordered)

    def default_configuration(self) -> Configuration:
        """Configuration holding every parameter's default."""
        return Configuration(self.parameter_names, [p.default for p in self._parameters])

    def validate(self, config: Mapping[str, Any]) -> Configuration:
        """Validate and normalize ``config`` into a :class:`Configuration`."""
        return self.configuration(config)

    def is_valid(self, config: Mapping[str, Any]) -> bool:
        """Whether ``config`` assigns an in-domain value to every parameter."""
        try:
            self.configuration(config)
            return True
        except (KeyError, ValueError):
            return False

    # -- sampling / enumeration ------------------------------------------------
    def sample(self, n: int, rng: RandomState = None, distinct: bool = True, max_attempts: int = 50) -> List[Configuration]:
        """Draw ``n`` uniformly random configurations.

        When ``distinct`` is true (the paper draws *distinct* configurations),
        duplicates are rejected; if the space is smaller than ``n`` every
        configuration is returned.
        """
        if n < 0:
            raise ValueError("cannot sample a negative number of configurations")
        gen = as_generator(rng)
        if distinct and self.is_enumerable and self.cardinality <= n:
            return self.enumerate()
        configs: List[Configuration] = []
        seen = set()
        attempts = 0
        while len(configs) < n and attempts < max_attempts:
            batch = max(n - len(configs), 1)
            draws = [p.sample(gen, size=batch) for p in self._parameters]
            for row in zip(*draws):
                c = Configuration(self.parameter_names, list(row))
                if distinct:
                    if c in seen:
                        continue
                    seen.add(c)
                configs.append(c)
                if len(configs) >= n:
                    break
            attempts += 1
        return configs[:n]

    def enumerate(self, limit: Optional[int] = None) -> List[Configuration]:
        """Enumerate every configuration of a finite space (optionally capped).

        Configurations come out in :func:`itertools.product` order (last
        parameter varying fastest) but are generated columnar-ly: the
        cartesian product is laid out as per-parameter NumPy index columns
        and the :class:`Configuration` objects are stamped out in one batch.
        """
        cols = self.enumeration_columns(limit)
        value_lists = [p.values() for p in self._parameters]
        value_cols = [
            [values[i] for i in idx.tolist()] for values, idx in zip(value_lists, cols)
        ]
        return Configuration.batch(self._param_names, zip(*value_cols))

    def enumeration_columns(self, limit: Optional[int] = None) -> List[np.ndarray]:
        """Per-parameter value-*index* columns of the full cartesian product.

        Column ``j`` holds, for every configuration of the product (in
        :meth:`enumerate` order), the index into ``parameters[j].values()`` of
        that configuration's value.  Built with ``np.repeat``/``np.tile``
        instead of a Python product loop, so crowd-scale spaces (the paper's
        ~1.8M-configuration KFusion space) enumerate in milliseconds.
        """
        if not self.is_enumerable:
            raise ValueError(f"design space {self.name!r} is not enumerable")
        shape = [int(p.cardinality) for p in self._parameters]
        total = 1
        for k in shape:
            total *= k
        count = total if limit is None else max(0, min(int(limit), total))
        cols: List[np.ndarray] = []
        inner = total
        for k in shape:
            inner //= k
            block = k * inner
            reps = -(-count // block) if count else 0  # ceil division
            col = np.tile(np.repeat(np.arange(k, dtype=np.int64), inner), reps)[:count]
            cols.append(col)
        return cols

    def encode_enumerated(self, limit: Optional[int] = None) -> np.ndarray:
        """Encoded feature matrix of the full cartesian product.

        Equivalent to ``self.encode(self.enumerate(limit))`` but built
        directly from the columnar index grids — no ``Configuration`` objects,
        no per-value Python mapping — so a full crowd-scale pool encodes in
        one vectorized pass per parameter.
        """
        cols = self.enumeration_columns(limit)
        n = int(cols[0].size) if cols else 0
        X = np.zeros((n, self._n_features), dtype=np.float64)
        if n == 0:
            return X
        for p, idx in zip(self._parameters, cols):
            sl = self._feature_slices[p.name]
            if p.is_categorical:
                X[np.arange(n), sl.start + idx] = 1.0
            else:
                numeric = np.array([p.to_numeric(v) for v in p.values()], dtype=np.float64)
                X[:, sl.start] = numeric[idx]
        return X

    def iter_enumerate(self) -> Iterator[Configuration]:
        """Lazily iterate over every configuration of a finite space."""
        if not self.is_enumerable:
            raise ValueError(f"design space {self.name!r} is not enumerable")
        value_lists = [p.values() for p in self._parameters]
        names = self.parameter_names
        for combo in itertools.product(*value_lists):
            yield Configuration(names, list(combo))

    def neighbors(self, config: Mapping[str, Any]) -> List[Configuration]:
        """One-parameter-away neighbors of ``config`` (used by local search)."""
        base = self.configuration(config)
        out: List[Configuration] = []
        for p in self._parameters:
            if not p.is_discrete:
                continue
            vals = p.values()
            current = base[p.name]
            if p.is_categorical:
                candidates = [v for v in vals if v != current]
            else:
                try:
                    idx = next(i for i, v in enumerate(vals) if v == current)
                except StopIteration:
                    idx = int(np.argmin([abs(p.to_numeric(v) - p.to_numeric(current)) for v in vals]))
                candidates = []
                if idx > 0:
                    candidates.append(vals[idx - 1])
                if idx < len(vals) - 1:
                    candidates.append(vals[idx + 1])
            for v in candidates:
                out.append(base.replace(**{p.name: v}))
        return out

    # -- numeric encoding ---------------------------------------------------------
    def encode(self, configs: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Encode configurations into a ``(n, n_features)`` float matrix.

        Ordinal/integer/real/boolean parameters map to a single column holding
        their numeric value; categorical parameters map to a one-hot block.
        Encoding is columnar: values are pulled out per parameter and mapped
        through a cached value→feature lookup table instead of calling
        ``to_numeric`` / ``index_of`` once per configuration.
        """
        n = len(configs)
        X = np.zeros((n, self._n_features), dtype=np.float64)
        if n == 0:
            return X
        rows = np.arange(n)
        for vals, p in zip(self._value_columns(configs), self._parameters):
            sl = self._feature_slices[p.name]
            lut = self._encode_luts[p.name]
            if lut is not None:
                try:
                    col = np.array(
                        [lut[v] if v in lut else self._encode_fallback(p, v) for v in vals],
                        dtype=np.float64,
                    )
                except TypeError:  # unhashable config value
                    col = np.array([self._encode_fallback(p, v) for v in vals], dtype=np.float64)
            elif p.is_categorical:
                col = np.array([self._encode_fallback(p, v) for v in vals], dtype=np.float64)
            elif isinstance(p, (IntegerParameter, RealParameter)):
                # ``to_numeric`` is plain float conversion for these types.
                col = np.asarray(vals, dtype=np.float64)
            else:
                col = np.array([p.to_numeric(v) for v in vals], dtype=np.float64)
            if p.is_categorical:
                X[rows, sl.start + col.astype(np.int64)] = 1.0
            else:
                X[:, sl.start] = col
        return X

    @staticmethod
    def _encode_fallback(p: Parameter, value: Any) -> float:
        """Encode a value missing from the cached lookup table."""
        if p.is_categorical:
            return float(p.index_of(value))  # type: ignore[attr-defined]
        return float(p.to_numeric(value))

    def _value_columns(self, configs: Sequence[Mapping[str, Any]]) -> List[Sequence[Any]]:
        """Per-parameter value columns of ``configs`` (space order).

        Configurations laid out in space order expose their value tuples
        directly; arbitrary mappings fall back to keyed access.
        """
        names = self._param_names
        if all(isinstance(c, Configuration) and c.names == names for c in configs):
            return list(zip(*(c.values_tuple for c in configs)))
        return [[c[name] for c in configs] for name in names]

    def encode_one(self, config: Mapping[str, Any]) -> np.ndarray:
        """Encode a single configuration into a 1-D feature vector."""
        return self.encode([config])[0]

    def decode(self, X: np.ndarray) -> List[Configuration]:
        """Inverse of :meth:`encode` (snapping to the nearest legal values)."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self._n_features:
            raise ValueError(f"expected {self._n_features} features, got {X.shape[1]}")
        configs: List[Configuration] = []
        for row in X:
            values: List[Any] = []
            for p in self._parameters:
                sl = self._feature_slices[p.name]
                if p.is_categorical:
                    idx = int(np.argmax(row[sl]))
                    values.append(p.values()[idx])
                else:
                    values.append(p.from_numeric(float(row[sl.start])))
            configs.append(Configuration(self.parameter_names, values))
        return configs

    def feature_slice(self, name: str) -> slice:
        """Column slice of the encoded matrix owned by parameter ``name``."""
        return self._feature_slices[name]

    # -- misc -----------------------------------------------------------------
    def subspace(self, names: Sequence[str], name: Optional[str] = None) -> "DesignSpace":
        """A new space restricted to the given parameter names (same order)."""
        missing = [n for n in names if n not in self._by_name]
        if missing:
            raise KeyError(f"unknown parameters: {missing}")
        return DesignSpace([self._by_name[n] for n in names], name=name or f"{self.name}-sub")

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"DesignSpace(name={self.name!r}, dimension={self.dimension}, cardinality={self.cardinality})"


class EnumeratedConfigs(Sequence[Configuration]):
    """Lazy, constant-memory view of a finite space's full enumeration.

    Behaves like ``space.enumerate()`` (same order, same elements) without
    materializing one ``Configuration`` per point: items are stamped out on
    access from the mixed-radix decomposition of their rank.  Because the
    sequence *is* the cartesian product, membership and position lookups are
    closed-form (:meth:`index_of` ranks a configuration in O(d)), which is
    what lets a 1.8M-configuration crowd pool skip both the config list and
    the config→row dictionary entirely.
    """

    def __init__(self, space: DesignSpace, limit: Optional[int] = None) -> None:
        if not space.is_enumerable:
            raise ValueError(f"design space {space.name!r} is not enumerable")
        self.space = space
        self._names = space._param_names
        self._value_lists = [p.values() for p in space.parameters]
        self._radix = [len(v) for v in self._value_lists]
        total = 1
        for k in self._radix:
            total *= k
        self._total = total if limit is None else max(0, min(int(limit), total))
        # value → index tables, one per parameter (values are hashable:
        # Configuration hashes them already).
        self._value_index: List[Dict[Any, int]] = [
            {v: i for i, v in enumerate(values)} for values in self._value_lists
        ]
        # Strides of the mixed-radix rank (product order: last digit fastest).
        strides = [1] * len(self._radix)
        for j in range(len(self._radix) - 2, -1, -1):
            strides[j] = strides[j + 1] * self._radix[j + 1]
        self._strides = strides

    def __len__(self) -> int:
        return self._total

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(self._total))]
        if i < 0:
            i += self._total
        if not (0 <= i < self._total):
            raise IndexError(f"index {i} out of range for {self._total} configurations")
        values = tuple(
            vals[(i // stride) % k]
            for vals, stride, k in zip(self._value_lists, self._strides, self._radix)
        )
        return Configuration.batch(self._names, [values])[0]

    def __iter__(self) -> Iterator[Configuration]:
        chunk = 8192
        for start in range(0, self._total, chunk):
            stop = min(start + chunk, self._total)
            rows = zip(
                *(
                    [vals[(i // stride) % k] for i in range(start, stop)]
                    for vals, stride, k in zip(self._value_lists, self._strides, self._radix)
                )
            )
            yield from Configuration.batch(self._names, rows)

    def __contains__(self, config: object) -> bool:
        return isinstance(config, Mapping) and self.index_of(config) is not None

    def index_of(self, config: Mapping[str, Any]) -> Optional[int]:
        """Rank of ``config`` in enumeration order, or ``None`` if absent."""
        if isinstance(config, Configuration):
            if config.names != self._names:
                return None
            values = config.values_tuple
        else:
            try:
                values = tuple(config[n] for n in self._names)
            except KeyError:
                return None
            if len(config) != len(self._names):
                return None
        rank = 0
        for v, lut, stride in zip(values, self._value_index, self._strides):
            try:
                idx = lut.get(v)
            except TypeError:  # unhashable value cannot be a member
                return None
            if idx is None:
                return None
            rank += idx * stride
        return rank if rank < self._total else None


__all__ = ["Configuration", "DesignSpace", "EnumeratedConfigs"]
