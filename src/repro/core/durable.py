"""Crash-safe artifact I/O: every write survives SIGKILL at any instruction.

The artifact layers above this module (run dirs, sweep manifests, lease
files) all share three durability needs, implemented once here:

* **atomic replace** — :func:`atomic_write_text` / :func:`atomic_write_json`
  write to a uniquely named temporary file in the *same directory*, flush,
  ``fsync``, then ``os.replace`` onto the target and ``fsync`` the directory.
  A reader therefore sees either the old bytes or the new bytes, never a
  torn mix, and the rename is on disk before the call returns.  Crash
  residue is a stray ``*.tmp`` file, which ``repro doctor`` removes.
* **checksummed envelopes** — :func:`write_checksummed_json` wraps a payload
  as ``{"checksum": "sha256:...", "payload": ...}`` over the payload's
  canonical JSON form, so a reader (:func:`read_checksummed_json`) can
  distinguish "file from a crashed/buggy writer" from "file I can trust"
  even on filesystems whose rename guarantees are weaker than POSIX.
* **torn-tail-tolerant JSONL** — an append-streamed ``history.jsonl`` killed
  mid-write ends in a partial line.  :func:`scan_jsonl` parses every
  newline-terminated record, reports (instead of raising on) a torn final
  line, and still raises on *mid-file* corruption, which no crash can
  produce; :func:`repair_jsonl` truncates the file back to the last
  complete record.

:class:`FileLock` is the advisory ``flock`` wrapper the sweep layer uses to
serialize manifest read-modify-write cycles and lease takeovers between
worker processes on one host (or hosts sharing a filesystem whose ``flock``
is coherent; see ``docs/distributed.md`` for the multi-host caveats).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Optional, Union

try:  # POSIX only; the lock degrades to a no-op where flock is unavailable.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.utils.serialization import to_jsonable

#: Suffix shared by every temporary file this module creates, so crash
#: residue is recognizable (``repro doctor`` globs for it).
TMP_SUFFIX = ".tmp"

_tmp_counter = 0
_tmp_counter_lock = threading.Lock()


class CorruptArtifactError(ValueError):
    """A persisted artifact failed an integrity check (checksum, mid-file JSONL)."""


class ChecksumMismatchError(CorruptArtifactError):
    """A checksummed envelope's payload does not hash to its recorded checksum."""


class CorruptJsonlError(CorruptArtifactError):
    """A JSONL file is corrupt *before* its final line — not crash residue."""


def fsync_dir(path: Union[str, Path]) -> None:
    """Flush a directory entry to disk (best effort: some filesystems refuse)."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. fsync on a directory refused
        pass
    finally:
        os.close(fd)


def _unique_tmp_path(path: Path) -> Path:
    # Unique per (process, call) so concurrent writers of one target never
    # share a temporary file; hidden so directory listings stay readable.
    global _tmp_counter
    with _tmp_counter_lock:
        _tmp_counter += 1
        n = _tmp_counter
    return path.parent / f".{path.name}.{os.getpid()}-{n}{TMP_SUFFIX}"


def atomic_write_text(path: Union[str, Path], text: str, *, fsync: bool = True) -> Path:
    """Write ``text`` to ``path`` atomically (tmp + fsync + replace + dir fsync).

    A reader concurrently opening ``path`` sees either the previous content
    or exactly ``text`` — never a prefix.  With ``fsync`` (the default) the
    bytes and the rename are on disk when the call returns, so the write
    also survives power loss, not just process death.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _unique_tmp_path(path)
    try:
        with tmp.open("w") as fh:
            fh.write(text)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    if fsync:
        fsync_dir(path.parent)
    return path


def atomic_write_json(
    path: Union[str, Path],
    payload: Any,
    *,
    indent: Optional[int] = 2,
    sort_keys: bool = True,
    trailing_newline: bool = False,
    fsync: bool = True,
) -> Path:
    """Serialize ``payload`` as JSON and write it atomically.

    The byte format matches the repo's historical direct writes
    (``json.dumps(..., indent=2, sort_keys=True)``; manifests add a trailing
    newline) so routing an existing artifact through this function changes
    its durability, never its content.
    """
    text = json.dumps(to_jsonable(payload), indent=indent, sort_keys=True if sort_keys else False)
    if trailing_newline:
        text += "\n"
    return atomic_write_text(path, text, fsync=fsync)


# ---------------------------------------------------------------------------
# Checksummed envelopes
# ---------------------------------------------------------------------------


def payload_checksum(payload: Any) -> str:
    """``sha256:<hex>`` over the payload's canonical (compact, sorted) JSON."""
    canonical = json.dumps(to_jsonable(payload), sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def make_envelope(payload: Any) -> dict:
    """Wrap ``payload`` with its checksum: ``{"checksum": ..., "payload": ...}``."""
    return {"checksum": payload_checksum(payload), "payload": to_jsonable(payload)}


def open_envelope(data: Any) -> Any:
    """Verify and unwrap an envelope produced by :func:`make_envelope`."""
    if not isinstance(data, dict) or set(data) != {"checksum", "payload"}:
        raise ChecksumMismatchError(f"not a checksummed envelope: keys {sorted(data) if isinstance(data, dict) else type(data).__name__}")
    expected = data["checksum"]
    actual = payload_checksum(data["payload"])
    if expected != actual:
        raise ChecksumMismatchError(f"checksum mismatch: recorded {expected}, computed {actual}")
    return data["payload"]


def write_checksummed_json(path: Union[str, Path], payload: Any, *, fsync: bool = True) -> Path:
    """Atomically write ``payload`` inside a checksummed envelope."""
    return atomic_write_json(path, make_envelope(payload), fsync=fsync)


def read_checksummed_json(path: Union[str, Path]) -> Any:
    """Read and verify an envelope file; raises :class:`ChecksumMismatchError`
    on tampering/corruption and :class:`CorruptArtifactError` on unparseable
    JSON (both subclasses of ``ValueError``)."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise CorruptArtifactError(f"{path}: invalid JSON: {exc}") from None
    return open_envelope(data)


# ---------------------------------------------------------------------------
# Torn-tail-tolerant JSONL
# ---------------------------------------------------------------------------


@dataclass
class JsonlScan:
    """Result of :func:`scan_jsonl`.

    ``records`` holds every complete record; ``clean_bytes`` is the offset
    of the first byte after the last complete record (the truncation point a
    repair uses); ``torn_tail`` is the partial final line a crash left
    behind (``None`` for a clean file).
    """

    records: List[Any]
    clean_bytes: int
    torn_tail: Optional[str] = None

    @property
    def is_torn(self) -> bool:
        return self.torn_tail is not None


def scan_jsonl(path: Union[str, Path]) -> JsonlScan:
    """Parse a JSONL file, tolerating a torn final line.

    A record is *complete* when its line is newline-terminated and parses as
    JSON.  A final line that is unterminated or unparseable is reported as
    ``torn_tail`` — exactly the residue a SIGKILL mid-append produces.  An
    unparseable line *before* the end cannot come from a crash of the
    append-only writer and raises :class:`CorruptJsonlError`.
    """
    path = Path(path)
    data = path.read_bytes()
    records: List[Any] = []
    offset = 0
    n = len(data)
    while offset < n:
        newline = data.find(b"\n", offset)
        terminated = newline != -1
        end = newline if terminated else n
        line = data[offset:end]
        parsed = None
        ok = False
        if line.strip():
            try:
                parsed = json.loads(line)
                ok = True
            except json.JSONDecodeError:
                ok = False
        else:
            # Blank lines are skippable padding, but an unterminated blank
            # tail is still clean (nothing was lost).
            offset = end + 1 if terminated else n
            continue
        if ok and terminated:
            records.append(parsed)
            offset = end + 1
            continue
        # Incomplete record: only acceptable as the very last line.
        if terminated and end + 1 < n:
            raise CorruptJsonlError(
                f"{path}: unparseable record at byte {offset} is not the final "
                "line — this is corruption, not crash residue"
            )
        return JsonlScan(
            records=records,
            clean_bytes=offset,
            torn_tail=line.decode("utf-8", errors="replace"),
        )
    return JsonlScan(records=records, clean_bytes=n, torn_tail=None)


def read_jsonl(path: Union[str, Path], *, tolerate_torn_tail: bool = True) -> List[Any]:
    """Read a JSONL file into a list of records.

    With ``tolerate_torn_tail`` (the default for resume paths), a partial
    final line is silently dropped — the durable history always ends at an
    evaluation boundary modulo that last line.  Set it to ``False`` to raise
    :class:`CorruptJsonlError` instead.
    """
    scan = scan_jsonl(path)
    if scan.is_torn and not tolerate_torn_tail:
        raise CorruptJsonlError(f"{path}: torn final line: {scan.torn_tail!r:.80}")
    return scan.records


class JsonlLogger:
    """Append-only, crash-safe JSONL event log (the service's queue journal).

    Each :meth:`append` writes one compact, newline-terminated JSON line,
    flushes it, and (by default) ``fsync``\\ s — so a SIGKILL at any
    instruction leaves the file ending at an event boundary, except possibly
    a torn final line, which :func:`scan_jsonl` readers drop.  Appends are
    serialized by an internal mutex, making the logger safe to share across
    the service's dispatcher and runner threads.
    """

    def __init__(self, path: Union[str, Path], *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self._lock = threading.Lock()
        self._fh = None

    def append(self, record: Any) -> None:
        """Durably append one event record."""
        line = json.dumps(to_jsonable(record), sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self.path.open("a")
            self._fh.write(line + "\n")
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "JsonlLogger":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def repair_jsonl(path: Union[str, Path]) -> Optional[str]:
    """Truncate a JSONL file back to its last complete record.

    Returns the removed torn tail, or ``None`` when the file was already
    clean.  The truncation itself is fsync'd so the repair is durable.
    """
    path = Path(path)
    scan = scan_jsonl(path)
    if not scan.is_torn:
        return None
    fd = os.open(str(path), os.O_WRONLY)
    try:
        os.ftruncate(fd, scan.clean_bytes)
        os.fsync(fd)
    finally:
        os.close(fd)
    return scan.torn_tail


# ---------------------------------------------------------------------------
# Advisory file locking
# ---------------------------------------------------------------------------


class FileLock:
    """An exclusive advisory lock on a dedicated lock file (``flock``).

    Used as a context manager::

        lock = FileLock(sweep_dir / ".sweep.lock")
        with lock:
            ...  # manifest read-modify-write, lease takeover

    The lock is *not* reentrant; callers structure their critical sections
    so each is entered once.  A per-instance thread mutex additionally
    serializes threads of one process (``flock`` is per-open-file, so two
    threads sharing the instance would otherwise both "hold" it).  Where
    ``fcntl`` is unavailable the lock degrades to thread-level only.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._thread_lock = threading.Lock()
        self._fd: Optional[int] = None

    def __enter__(self) -> "FileLock":
        self._thread_lock.acquire()
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(str(self.path), os.O_CREAT | os.O_RDWR, 0o644)
            if fcntl is not None:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                except OSError:
                    os.close(fd)
                    raise
            self._fd = fd
        except BaseException:
            self._thread_lock.release()
            raise
        return self

    def __exit__(self, *exc_info: Any) -> None:
        fd, self._fd = self._fd, None
        try:
            if fd is not None:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                os.close(fd)
        finally:
            self._thread_lock.release()


__all__ = [
    "TMP_SUFFIX",
    "CorruptArtifactError",
    "ChecksumMismatchError",
    "CorruptJsonlError",
    "fsync_dir",
    "atomic_write_text",
    "atomic_write_json",
    "payload_checksum",
    "make_envelope",
    "open_envelope",
    "write_checksummed_json",
    "read_checksummed_json",
    "JsonlScan",
    "scan_jsonl",
    "read_jsonl",
    "repair_jsonl",
    "JsonlLogger",
    "FileLock",
]
