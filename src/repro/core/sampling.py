"""Samplers producing the configuration pools and bootstrap designs.

The paper bootstraps HyperMapper from "a small number of randomly drawn
samples in the parameter space" and, because exhaustive evaluation is
impossible, also works with a finite configuration *pool* drawn from the full
space over which the surrogate predicts.  Besides plain uniform random
sampling we also provide Latin-hypercube sampling (a space-filling design used
as an ablation) and grid sampling (the "expert brute-force grid search"
baseline used by the ElasticFusion developers).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import numpy as np

from repro.core.space import Configuration, DesignSpace
from repro.utils.rng import RandomState, as_generator


class Sampler(ABC):
    """Base class for configuration samplers."""

    def __init__(self, space: DesignSpace) -> None:
        self.space = space

    @abstractmethod
    def sample(self, n: int, rng: RandomState = None) -> List[Configuration]:
        """Draw ``n`` configurations."""


class RandomSampler(Sampler):
    """Uniform random sampling of distinct configurations (paper default)."""

    def __init__(self, space: DesignSpace, distinct: bool = True) -> None:
        super().__init__(space)
        self.distinct = distinct

    def sample(self, n: int, rng: RandomState = None) -> List[Configuration]:
        return self.space.sample(n, rng=rng, distinct=self.distinct)


class LatinHypercubeSampler(Sampler):
    """Latin-hypercube style stratified sampling over the parameter domains.

    Each parameter's value list (or continuous range) is divided into ``n``
    strata; one value is drawn per stratum and the strata are randomly paired
    across parameters.  For discrete parameters with fewer values than strata
    the values simply repeat as evenly as possible.
    """

    def sample(self, n: int, rng: RandomState = None) -> List[Configuration]:
        if n <= 0:
            return []
        gen = as_generator(rng)
        columns: List[List[object]] = []
        for p in self.space.parameters:
            if p.is_discrete:
                values = p.values()
                reps = int(np.ceil(n / len(values)))
                col = (values * reps)[:n]
            else:
                # Stratified uniform draws over [lower, upper].
                lows = np.linspace(0.0, 1.0, n, endpoint=False)
                u = lows + gen.uniform(0.0, 1.0 / n, size=n)
                col = [p.from_numeric(p.lower + x * (p.upper - p.lower)) for x in u]  # type: ignore[attr-defined]
            order = gen.permutation(n)
            columns.append([col[i] for i in order])
        names = self.space.parameter_names
        configs = [Configuration(names, [columns[j][i] for j in range(len(columns))]) for i in range(n)]
        return configs


class GridSampler(Sampler):
    """Coarse grid sampling (the human-expert brute-force baseline).

    ``levels`` limits how many values per parameter are considered: experts
    hand-tuning ElasticFusion "used a brute force grid search to tune the
    parameters", which is only tractable on a coarse grid.  The grid takes
    evenly spaced values from each parameter's value list.
    """

    def __init__(self, space: DesignSpace, levels: int = 3) -> None:
        super().__init__(space)
        if levels < 1:
            raise ValueError("levels must be >= 1")
        self.levels = int(levels)

    def grid_values(self) -> List[List[object]]:
        """Per-parameter value subsets making up the grid."""
        out: List[List[object]] = []
        for p in self.space.parameters:
            values = p.values()
            if len(values) <= self.levels:
                out.append(list(values))
            else:
                idx = np.linspace(0, len(values) - 1, self.levels).round().astype(int)
                out.append([values[i] for i in sorted(set(idx.tolist()))])
        return out

    def full_grid(self, limit: Optional[int] = None) -> List[Configuration]:
        """Enumerate the full coarse grid (optionally capped at ``limit``)."""
        import itertools

        names = self.space.parameter_names
        configs: List[Configuration] = []
        for combo in itertools.product(*self.grid_values()):
            configs.append(Configuration(names, list(combo)))
            if limit is not None and len(configs) >= limit:
                break
        return configs

    def sample(self, n: int, rng: RandomState = None) -> List[Configuration]:
        grid = self.full_grid()
        if n >= len(grid):
            return grid
        gen = as_generator(rng)
        idx = gen.choice(len(grid), size=n, replace=False)
        return [grid[int(i)] for i in idx]


def build_pool(
    space: DesignSpace,
    pool_size: Optional[int],
    rng: RandomState = None,
    include: Sequence[Configuration] = (),
) -> List[Configuration]:
    """Build the prediction pool the surrogate sweeps over.

    If the space is small enough (or ``pool_size`` is ``None`` and the space is
    enumerable within a safe bound) the pool is the full space, matching the
    paper's "predict the performance over the entire parameter space".
    Otherwise a uniform random pool of ``pool_size`` distinct configurations is
    drawn, and ``include`` configurations (e.g. the default) are guaranteed to
    be present.
    """
    full_enumeration_cap = 200_000
    if space.is_enumerable and (pool_size is None or space.cardinality <= pool_size) and space.cardinality <= full_enumeration_cap:
        pool = space.enumerate()
    else:
        if pool_size is None:
            pool_size = 20_000
        pool = space.sample(pool_size, rng=rng, distinct=True)
    existing = set(pool)
    for c in include:
        if c not in existing:
            pool.append(c)
            existing.add(c)
    return pool


__all__ = [
    "Sampler",
    "RandomSampler",
    "LatinHypercubeSampler",
    "GridSampler",
    "build_pool",
]
