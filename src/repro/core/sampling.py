"""Samplers producing the configuration pools and bootstrap designs.

The paper bootstraps HyperMapper from "a small number of randomly drawn
samples in the parameter space" and, because exhaustive evaluation is
impossible, also works with a finite configuration *pool* drawn from the full
space over which the surrogate predicts.  Besides plain uniform random
sampling we also provide Latin-hypercube sampling (a space-filling design used
as an ablation) and grid sampling (the "expert brute-force grid search"
baseline used by the ElasticFusion developers).

:class:`EncodedPool` pairs a pool with its one-time numeric encoding so the
active-learning loop never re-encodes an unchanged pool.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.flat_forest import PoolIndex
from repro.core.space import Configuration, DesignSpace, EnumeratedConfigs
from repro.core.tree_builder import BinMapper
from repro.utils.rng import RandomState, as_generator

#: Spaces up to this many configurations are fully enumerated into the pool
#: (columnar-ly), matching the paper's "predict the performance over the
#: entire parameter space" at crowd scale (~1.8M KFusion configurations).
FULL_ENUMERATION_CAP = 2_000_000


class Sampler(ABC):
    """Base class for configuration samplers."""

    def __init__(self, space: DesignSpace) -> None:
        self.space = space

    @abstractmethod
    def sample(self, n: int, rng: RandomState = None) -> List[Configuration]:
        """Draw ``n`` configurations."""


class RandomSampler(Sampler):
    """Uniform random sampling of distinct configurations (paper default)."""

    def __init__(self, space: DesignSpace, distinct: bool = True) -> None:
        super().__init__(space)
        self.distinct = distinct

    def sample(self, n: int, rng: RandomState = None) -> List[Configuration]:
        return self.space.sample(n, rng=rng, distinct=self.distinct)


class LatinHypercubeSampler(Sampler):
    """Latin-hypercube style stratified sampling over the parameter domains.

    Each parameter's value list (or continuous range) is divided into ``n``
    strata; one value is drawn per stratum and the strata are randomly paired
    across parameters.  For discrete parameters with fewer values than strata
    the values simply repeat as evenly as possible.
    """

    def sample(self, n: int, rng: RandomState = None) -> List[Configuration]:
        if n <= 0:
            return []
        gen = as_generator(rng)
        columns: List[List[object]] = []
        for p in self.space.parameters:
            if p.is_discrete:
                values = p.values()
                reps = int(np.ceil(n / len(values)))
                col = (values * reps)[:n]
            else:
                # Stratified uniform draws over [lower, upper].
                lows = np.linspace(0.0, 1.0, n, endpoint=False)
                u = lows + gen.uniform(0.0, 1.0 / n, size=n)
                col = [p.from_numeric(p.lower + x * (p.upper - p.lower)) for x in u]  # type: ignore[attr-defined]
            order = gen.permutation(n)
            columns.append([col[i] for i in order])
        names = self.space.parameter_names
        configs = [Configuration(names, [columns[j][i] for j in range(len(columns))]) for i in range(n)]
        return configs


class GridSampler(Sampler):
    """Coarse grid sampling (the human-expert brute-force baseline).

    ``levels`` limits how many values per parameter are considered: experts
    hand-tuning ElasticFusion "used a brute force grid search to tune the
    parameters", which is only tractable on a coarse grid.  The grid takes
    evenly spaced values from each parameter's value list.
    """

    def __init__(self, space: DesignSpace, levels: int = 3) -> None:
        super().__init__(space)
        if levels < 1:
            raise ValueError("levels must be >= 1")
        self.levels = int(levels)

    def grid_values(self) -> List[List[object]]:
        """Per-parameter value subsets making up the grid."""
        out: List[List[object]] = []
        for p in self.space.parameters:
            values = p.values()
            if len(values) <= self.levels:
                out.append(list(values))
            else:
                idx = np.linspace(0, len(values) - 1, self.levels).round().astype(int)
                out.append([values[i] for i in sorted(set(idx.tolist()))])
        return out

    def full_grid(self, limit: Optional[int] = None) -> List[Configuration]:
        """Enumerate the full coarse grid (optionally capped at ``limit``)."""
        import itertools

        names = self.space.parameter_names
        configs: List[Configuration] = []
        for combo in itertools.product(*self.grid_values()):
            configs.append(Configuration(names, list(combo)))
            if limit is not None and len(configs) >= limit:
                break
        return configs

    def sample(self, n: int, rng: RandomState = None) -> List[Configuration]:
        grid = self.full_grid()
        if n >= len(grid):
            return grid
        gen = as_generator(rng)
        idx = gen.choice(len(grid), size=n, replace=False)
        return [grid[int(i)] for i in idx]


def _should_enumerate(space: DesignSpace, pool_size: Optional[int]) -> bool:
    """Whether the pool should be the fully enumerated space."""
    return (
        space.is_enumerable
        and (pool_size is None or space.cardinality <= pool_size)
        and space.cardinality <= FULL_ENUMERATION_CAP
    )


def build_pool(
    space: DesignSpace,
    pool_size: Optional[int],
    rng: RandomState = None,
    include: Sequence[Configuration] = (),
) -> List[Configuration]:
    """Build the prediction pool the surrogate sweeps over.

    If the space is small enough (or ``pool_size`` is ``None`` and the space is
    enumerable within a safe bound) the pool is the full space, matching the
    paper's "predict the performance over the entire parameter space".
    Otherwise a uniform random pool of ``pool_size`` distinct configurations is
    drawn, and ``include`` configurations (e.g. the default) are guaranteed to
    be present.
    """
    if _should_enumerate(space, pool_size):
        pool = space.enumerate()
    else:
        if pool_size is None:
            pool_size = 20_000
        pool = space.sample(pool_size, rng=rng, distinct=True)
    existing = set(pool)
    for c in include:
        if c not in existing:
            pool.append(c)
            existing.add(c)
    return pool


@dataclass
class EncodedPool:
    """A configuration pool together with its one-time numeric encoding.

    The pool the surrogate predicts over is static for a whole HyperMapper
    run, so its feature matrix is computed exactly once and reused every
    active-learning iteration.  Because every evaluated configuration is also
    a pool member, fitting can gather training rows from the cached matrix
    instead of re-encoding the history (:meth:`rows_for`).

    Two further per-run caches hang off the pool: the packed-bitset
    :attr:`bitset_index` feeding the flat forest's inference kernel, and the
    :attr:`bin_mapper`/:attr:`binned` quantization feeding the histogram
    *fitting* engine — every refit of every tree across all iterations bins
    against the same ≤255-bin ``uint8`` matrix derived here exactly once.

    ``configs`` may be a lazy :class:`~repro.core.space.EnumeratedConfigs`
    view, in which case membership/row lookups use its closed-form ranking
    and no config→row dictionary is built at all.
    """

    configs: Sequence[Configuration]
    X: np.ndarray
    _index: Dict[Configuration, int] = field(repr=False, default_factory=dict)
    _extra_rows: Dict[Configuration, np.ndarray] = field(repr=False, default_factory=dict)
    _extra_binned: Dict[Configuration, np.ndarray] = field(repr=False, default_factory=dict)
    _bitset_index: Optional[PoolIndex] = field(repr=False, default=None)
    _bin_mapper: Optional[BinMapper] = field(repr=False, default=None)
    _binned: Optional[np.ndarray] = field(repr=False, default=None)

    def __post_init__(self) -> None:
        if self.X.shape[0] != len(self.configs):
            raise ValueError("X must have one row per pool configuration")
        self._lazy = self.configs if isinstance(self.configs, EnumeratedConfigs) else None
        if self._lazy is None and not self._index:
            self._index = {c: i for i, c in enumerate(self.configs)}

    def __len__(self) -> int:
        return len(self.configs)

    def __contains__(self, config: Configuration) -> bool:
        return self._position(config) is not None

    def _position(self, config: Configuration) -> Optional[int]:
        """Pool row of ``config`` (``None`` when it is not a member)."""
        if self._lazy is not None:
            return self._lazy.index_of(config)
        return self._index.get(config)

    def position(self, config: Configuration) -> Optional[int]:
        """Pool rank of ``config``, or ``None`` when it is not a member.

        For a fully enumerated pool this is the closed-form mixed-radix rank
        (no dictionary at all); for sampled pools it is one dict lookup.  The
        search engine keeps its evaluated/claimed sets as these integer ranks
        so per-iteration membership filtering never touches configuration
        objects.
        """
        return self._position(config)

    @property
    def bitset_index(self) -> PoolIndex:
        """Packed-bitset index of the pool, built lazily and cached.

        Feeds the flat forest's bitset kernel: per-iteration surrogate
        prediction over the pool becomes byte-wise bitset arithmetic instead
        of per-sample tree traversal.
        """
        if self._bitset_index is None:
            self._bitset_index = PoolIndex(self.X)
        return self._bitset_index

    @property
    def bitset_kernel_seconds(self) -> float:
        """Cumulative bitset-kernel wall time, without forcing the index.

        ``0.0`` until :attr:`bitset_index` has been materialized — reading
        this never triggers the (expensive) index build, so callers can
        difference it around a prediction step to attribute kernel time.
        """
        return 0.0 if self._bitset_index is None else float(self._bitset_index.kernel_seconds)

    @property
    def bin_mapper(self) -> BinMapper:
        """Per-run feature quantization, derived from the pool matrix once."""
        if self._bin_mapper is None:
            self._bin_mapper = BinMapper().fit(self.X)
        return self._bin_mapper

    @property
    def binned(self) -> np.ndarray:
        """``uint8`` binned pool matrix (lazy, cached; see :attr:`bin_mapper`)."""
        if self._binned is None:
            self._binned = self.bin_mapper.transform(self.X)
        return self._binned

    def rows_for(self, space: DesignSpace, configs: Sequence[Configuration]) -> np.ndarray:
        """Encoded feature rows for ``configs``, reusing cached pool rows.

        Configurations outside the pool (e.g. a warm-start history that was
        never folded into the pool) are encoded once and memoized.
        """
        missing = [
            c for c in configs if self._position(c) is None and c not in self._extra_rows
        ]
        if missing:
            encoded = space.encode(missing)
            for c, row in zip(missing, encoded):
                self._extra_rows[c] = row
        rows = np.empty((len(configs), self.X.shape[1]), dtype=np.float64)
        for i, c in enumerate(configs):
            j = self._position(c)
            rows[i] = self.X[j] if j is not None else self._extra_rows[c]
        return rows

    def binned_rows_for(self, space: DesignSpace, configs: Sequence[Configuration]) -> np.ndarray:
        """Binned feature rows for ``configs``, gathered from :attr:`binned`.

        The histogram fitting path's analogue of :meth:`rows_for`:
        pool members are row gathers from the cached binned matrix,
        out-of-pool configurations are quantized once and memoized.
        """
        binned = self.binned
        missing = [
            c for c in configs if self._position(c) is None and c not in self._extra_binned
        ]
        if missing:
            quantized = self.bin_mapper.transform(self.rows_for(space, missing))
            for c, row in zip(missing, quantized):
                self._extra_binned[c] = row
        rows = np.empty((len(configs), binned.shape[1]), dtype=np.uint8)
        for i, c in enumerate(configs):
            j = self._position(c)
            rows[i] = binned[j] if j is not None else self._extra_binned[c]
        return rows


def build_encoded_pool(
    space: DesignSpace,
    pool_size: Optional[int],
    rng: RandomState = None,
    include: Sequence[Configuration] = (),
) -> EncodedPool:
    """:func:`build_pool` plus a single up-front encoding of the result.

    Fully enumerable spaces take the columnar fast path: the encoded matrix
    is built straight from the cartesian-product index grids
    (:meth:`~repro.core.space.DesignSpace.encode_enumerated`) and the config
    sequence stays a lazy :class:`~repro.core.space.EnumeratedConfigs` view —
    a crowd-scale 1.8M-configuration pool never materializes per-config
    Python objects at all.
    """
    if _should_enumerate(space, pool_size):
        configs = EnumeratedConfigs(space)
        missing = [c for c in include if configs.index_of(c) is None]
        if not missing:
            return EncodedPool(configs=configs, X=space.encode_enumerated())
        # Rare fallback: an include configuration outside the space's own
        # product (e.g. a warm-start history from another space variant).
        pool = space.enumerate() + missing
        return EncodedPool(configs=pool, X=space.encode(pool))
    configs = build_pool(space, pool_size, rng=rng, include=include)
    return EncodedPool(configs=configs, X=space.encode(configs))


__all__ = [
    "Sampler",
    "RandomSampler",
    "LatinHypercubeSampler",
    "GridSampler",
    "build_pool",
    "EncodedPool",
    "build_encoded_pool",
    "FULL_ENUMERATION_CAP",
]
