"""Parameter types used to declare algorithmic design spaces.

The KFusion and ElasticFusion design spaces of the paper are discrete: every
parameter takes one of a small set of values (volume resolutions, integration
rates, boolean flags, ...).  The abstractions here nevertheless support
continuous parameters so HyperMapper can be used on arbitrary black boxes.

Each parameter knows how to

* enumerate or sample its values,
* convert a value to/from a numeric feature used by the random-forest
  surrogate (``to_numeric`` / ``from_numeric``),
* report whether it is categorical (unordered), which changes how the tree
  splits on it.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import RandomState, as_generator


class Parameter(ABC):
    """Abstract base class for a single tunable parameter."""

    def __init__(self, name: str, default: Any = None) -> None:
        if not name or not isinstance(name, str):
            raise ValueError("parameter name must be a non-empty string")
        self.name = name
        self._default = default

    # -- domain ------------------------------------------------------------
    @property
    @abstractmethod
    def cardinality(self) -> float:
        """Number of distinct values (``math.inf`` for continuous)."""

    @property
    def is_discrete(self) -> bool:
        """Whether the domain can be enumerated."""
        return math.isfinite(self.cardinality)

    @property
    def is_categorical(self) -> bool:
        """Whether the domain is unordered (affects surrogate encoding)."""
        return False

    @property
    def default(self) -> Any:
        """Default value (the value used in the application's shipped config)."""
        if self._default is None:
            return self._fallback_default()
        return self._default

    @abstractmethod
    def _fallback_default(self) -> Any:
        """Default when the user did not provide one."""

    @abstractmethod
    def values(self) -> List[Any]:
        """All values for discrete parameters (raises for continuous)."""

    @abstractmethod
    def contains(self, value: Any) -> bool:
        """Whether ``value`` lies inside the domain."""

    # -- sampling ----------------------------------------------------------
    @abstractmethod
    def sample(self, rng: RandomState = None, size: Optional[int] = None) -> Any:
        """Draw one value (``size=None``) or an array/list of values."""

    # -- numeric encoding --------------------------------------------------
    @abstractmethod
    def to_numeric(self, value: Any) -> float:
        """Map a domain value to the numeric feature fed to the surrogate."""

    @abstractmethod
    def from_numeric(self, x: float) -> Any:
        """Inverse of :meth:`to_numeric` (snapping to the nearest legal value)."""

    def validate(self, value: Any) -> Any:
        """Return ``value`` if legal, raising :class:`ValueError` otherwise."""
        if not self.contains(value):
            raise ValueError(f"value {value!r} is outside the domain of parameter {self.name!r}")
        return value

    # -- serialization -------------------------------------------------------
    @abstractmethod
    def to_dict(self) -> dict:
        """Plain-dict specification, the exact inverse of :func:`parameter_from_dict`.

        The round trip ``parameter_from_dict(p.to_dict()) == p`` holds for
        every parameter type; an explicitly provided default is preserved,
        an implicit (fallback) default stays implicit.
        """

    def _base_dict(self, kind: str) -> dict:
        d: dict = {"type": kind, "name": self.name}
        if self._default is not None:
            d["default"] = self._default
        return d

    # -- identity -------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name))

    # -- misc ----------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{type(self).__name__}(name={self.name!r})"


class OrdinalParameter(Parameter):
    """A parameter taking one of an explicit, *ordered* list of values.

    This is the workhorse of the SLAM design spaces (e.g. volume resolution in
    ``{64, 128, 256}``, µ in ``{0.025, ..., 0.5}``).  Values may be numbers or
    any hashable objects; ordering follows the list order and the numeric
    encoding is the value itself when numeric, else the index.
    """

    def __init__(self, name: str, values: Sequence[Any], default: Any = None) -> None:
        super().__init__(name, default)
        if len(values) == 0:
            raise ValueError(f"ordinal parameter {name!r} needs at least one value")
        seen = set()
        cleaned: List[Any] = []
        for v in values:
            key = v
            if key in seen:
                raise ValueError(f"duplicate value {v!r} in ordinal parameter {name!r}")
            seen.add(key)
            cleaned.append(v)
        self._values = cleaned
        self._numeric = all(isinstance(v, (int, float, np.integer, np.floating)) and not isinstance(v, bool) for v in cleaned)
        if default is not None and default not in seen:
            raise ValueError(f"default {default!r} not among values of parameter {name!r}")

    @property
    def cardinality(self) -> float:
        return float(len(self._values))

    def _fallback_default(self) -> Any:
        return self._values[len(self._values) // 2]

    def values(self) -> List[Any]:
        return list(self._values)

    def contains(self, value: Any) -> bool:
        return any(value == v for v in self._values)

    def sample(self, rng: RandomState = None, size: Optional[int] = None) -> Any:
        gen = as_generator(rng)
        if size is None:
            return self._values[int(gen.integers(len(self._values)))]
        idx = gen.integers(len(self._values), size=size)
        return [self._values[int(i)] for i in idx]

    def to_numeric(self, value: Any) -> float:
        if self._numeric:
            return float(value)
        return float(self.index_of(value))

    def from_numeric(self, x: float) -> Any:
        if self._numeric:
            arr = np.asarray(self._values, dtype=float)
            return self._values[int(np.argmin(np.abs(arr - x)))]
        idx = int(round(x))
        idx = min(max(idx, 0), len(self._values) - 1)
        return self._values[idx]

    def index_of(self, value: Any) -> int:
        """Index of ``value`` in the ordered value list."""
        for i, v in enumerate(self._values):
            if v == value:
                return i
        raise ValueError(f"value {value!r} not in ordinal parameter {self.name!r}")

    def to_dict(self) -> dict:
        d = self._base_dict("ordinal")
        d["values"] = list(self._values)
        return d


class IntegerParameter(Parameter):
    """An integer parameter in an inclusive range ``[lower, upper]``."""

    def __init__(self, name: str, lower: int, upper: int, default: Optional[int] = None) -> None:
        super().__init__(name, default)
        lower, upper = int(lower), int(upper)
        if lower > upper:
            raise ValueError(f"lower bound {lower} exceeds upper bound {upper} for {name!r}")
        self.lower = lower
        self.upper = upper
        if default is not None and not (lower <= int(default) <= upper):
            raise ValueError(f"default {default} outside [{lower}, {upper}] for {name!r}")

    @property
    def cardinality(self) -> float:
        return float(self.upper - self.lower + 1)

    def _fallback_default(self) -> int:
        return (self.lower + self.upper) // 2

    def values(self) -> List[int]:
        return list(range(self.lower, self.upper + 1))

    def contains(self, value: Any) -> bool:
        try:
            iv = int(value)
        except (TypeError, ValueError):
            return False
        return iv == value and self.lower <= iv <= self.upper

    def sample(self, rng: RandomState = None, size: Optional[int] = None) -> Any:
        gen = as_generator(rng)
        if size is None:
            return int(gen.integers(self.lower, self.upper + 1))
        return [int(v) for v in gen.integers(self.lower, self.upper + 1, size=size)]

    def to_numeric(self, value: Any) -> float:
        return float(value)

    def from_numeric(self, x: float) -> int:
        return int(min(max(round(x), self.lower), self.upper))

    def to_dict(self) -> dict:
        d = self._base_dict("integer")
        d["lower"] = self.lower
        d["upper"] = self.upper
        return d


class RealParameter(Parameter):
    """A continuous parameter on ``[lower, upper]``, optionally log-uniform.

    For enumeration-based search (grid sampling, exhaustive pools) the domain
    is discretized into ``grid_points`` evenly spaced values.
    """

    def __init__(
        self,
        name: str,
        lower: float,
        upper: float,
        default: Optional[float] = None,
        log_scale: bool = False,
        grid_points: int = 16,
    ) -> None:
        super().__init__(name, default)
        lower, upper = float(lower), float(upper)
        if not (lower < upper):
            raise ValueError(f"need lower < upper for real parameter {name!r}")
        if log_scale and lower <= 0:
            raise ValueError(f"log-scale parameter {name!r} requires a positive lower bound")
        if grid_points < 2:
            raise ValueError("grid_points must be at least 2")
        self.lower = lower
        self.upper = upper
        self.log_scale = bool(log_scale)
        self.grid_points = int(grid_points)
        if default is not None and not (lower <= float(default) <= upper):
            raise ValueError(f"default {default} outside [{lower}, {upper}] for {name!r}")

    @property
    def cardinality(self) -> float:
        return math.inf

    def _fallback_default(self) -> float:
        if self.log_scale:
            return float(np.sqrt(self.lower * self.upper))
        return 0.5 * (self.lower + self.upper)

    def values(self) -> List[float]:
        """A ``grid_points``-long discretization of the domain."""
        if self.log_scale:
            return [float(v) for v in np.geomspace(self.lower, self.upper, self.grid_points)]
        return [float(v) for v in np.linspace(self.lower, self.upper, self.grid_points)]

    def contains(self, value: Any) -> bool:
        try:
            fv = float(value)
        except (TypeError, ValueError):
            return False
        return self.lower <= fv <= self.upper

    def sample(self, rng: RandomState = None, size: Optional[int] = None) -> Any:
        gen = as_generator(rng)
        n = 1 if size is None else size
        if self.log_scale:
            draws = np.exp(gen.uniform(np.log(self.lower), np.log(self.upper), size=n))
        else:
            draws = gen.uniform(self.lower, self.upper, size=n)
        if size is None:
            return float(draws[0])
        return [float(v) for v in draws]

    def to_numeric(self, value: Any) -> float:
        return float(value)

    def from_numeric(self, x: float) -> float:
        return float(min(max(x, self.lower), self.upper))

    def to_dict(self) -> dict:
        d = self._base_dict("real")
        d["lower"] = self.lower
        d["upper"] = self.upper
        if self.log_scale:
            d["log_scale"] = True
        if self.grid_points != 16:
            d["grid_points"] = self.grid_points
        return d


class CategoricalParameter(Parameter):
    """A parameter taking one of an *unordered* set of choices.

    The numeric encoding is the choice index; the surrogate layer one-hot
    encodes categorical parameters so that the index ordering carries no
    meaning.
    """

    def __init__(self, name: str, choices: Sequence[Any], default: Any = None) -> None:
        super().__init__(name, default)
        if len(choices) == 0:
            raise ValueError(f"categorical parameter {name!r} needs at least one choice")
        if len(set(map(repr, choices))) != len(choices):
            raise ValueError(f"duplicate choices in categorical parameter {name!r}")
        self._choices = list(choices)
        if default is not None and default not in self._choices:
            raise ValueError(f"default {default!r} not among choices of {name!r}")

    @property
    def cardinality(self) -> float:
        return float(len(self._choices))

    @property
    def is_categorical(self) -> bool:
        return True

    def _fallback_default(self) -> Any:
        return self._choices[0]

    def values(self) -> List[Any]:
        return list(self._choices)

    def contains(self, value: Any) -> bool:
        return value in self._choices

    def sample(self, rng: RandomState = None, size: Optional[int] = None) -> Any:
        gen = as_generator(rng)
        if size is None:
            return self._choices[int(gen.integers(len(self._choices)))]
        idx = gen.integers(len(self._choices), size=size)
        return [self._choices[int(i)] for i in idx]

    def to_numeric(self, value: Any) -> float:
        return float(self.index_of(value))

    def from_numeric(self, x: float) -> Any:
        idx = int(round(x))
        idx = min(max(idx, 0), len(self._choices) - 1)
        return self._choices[idx]

    def index_of(self, value: Any) -> int:
        """Index of ``value`` among the choices."""
        for i, v in enumerate(self._choices):
            if v == value:
                return i
        raise ValueError(f"value {value!r} not a choice of categorical parameter {self.name!r}")

    def to_dict(self) -> dict:
        d = self._base_dict("categorical")
        d["choices"] = list(self._choices)
        return d


class BooleanParameter(CategoricalParameter):
    """A boolean flag (ElasticFusion exposes five of these)."""

    def __init__(self, name: str, default: bool = False) -> None:
        super().__init__(name, [False, True], default=bool(default))

    def to_numeric(self, value: Any) -> float:
        return 1.0 if bool(value) else 0.0

    def from_numeric(self, x: float) -> bool:
        return bool(x >= 0.5)

    @property
    def is_categorical(self) -> bool:
        # Booleans are safe to treat as ordered 0/1 features for the forest.
        return False

    def to_dict(self) -> dict:
        # ``default`` is always materialized (the constructor coerces it), so
        # it is always emitted — unlike the other types, where an implicit
        # fallback default stays implicit.
        return {"type": "boolean", "name": self.name, "default": bool(self.default)}


def parameter_from_dict(spec: dict) -> Parameter:
    """Build a parameter from a plain-dict specification.

    Recognized ``type`` values: ``ordinal``, ``integer``, ``real``,
    ``categorical``, ``boolean``.  This is the JSON-facing constructor used to
    declare spaces in configuration files, mirroring HyperMapper's JSON space
    description.
    """
    kind = spec.get("type")
    name = spec.get("name")
    if not name:
        raise ValueError("parameter specification requires a 'name'")
    if kind == "ordinal":
        return OrdinalParameter(name, spec["values"], default=spec.get("default"))
    if kind == "integer":
        return IntegerParameter(name, spec["lower"], spec["upper"], default=spec.get("default"))
    if kind == "real":
        return RealParameter(
            name,
            spec["lower"],
            spec["upper"],
            default=spec.get("default"),
            log_scale=spec.get("log_scale", False),
            grid_points=spec.get("grid_points", 16),
        )
    if kind == "categorical":
        return CategoricalParameter(name, spec["choices"], default=spec.get("default"))
    if kind == "boolean":
        return BooleanParameter(name, default=spec.get("default", False))
    raise ValueError(f"unknown parameter type {kind!r}")


__all__ = [
    "Parameter",
    "OrdinalParameter",
    "IntegerParameter",
    "RealParameter",
    "CategoricalParameter",
    "BooleanParameter",
    "parameter_from_dict",
]
