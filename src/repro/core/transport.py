"""Socket transport for distributed evaluation (one queue, many hosts).

The paper's operating mode is a fleet of heterogeneous devices draining one
optimization loop's evaluation queue (the 83-device crowd of Fig. 5).  This
module is the wire layer that makes that topology real:

* **framing** — length-prefixed JSON frames over TCP (stdlib only: a 4-byte
  big-endian length followed by a UTF-8 JSON object).  Task payloads are
  pickled and base64-embedded, so arbitrary evaluator callables cross the
  wire exactly as they cross a ``ProcessPoolExecutor`` boundary,
* **versioned handshake** — workers open with a ``hello`` carrying
  :data:`PROTOCOL_VERSION`; the broker answers ``welcome`` (assigning a
  worker id and the heartbeat interval) or ``reject``,
* **heartbeats** — workers ping on a fixed interval, including *during* a
  long evaluation (the ping thread is independent of the evaluation); the
  broker declares a worker dead after ``3 × heartbeat_s`` of silence or on
  EOF/reset, whichever comes first,
* **an evaluation broker** — :class:`EvaluationBroker` owns one FIFO task
  queue and hands exactly one task at a time to each connected worker.  Its
  :meth:`~EvaluationBroker.submit` returns a ``concurrent.futures.Future``,
  so it duck-types as the worker pool behind
  :class:`~repro.core.executor.EvaluationExecutor`'s ``backend="socket"``.

Failure semantics, precisely:

* a task that never reached a worker (send failed, worker died while idle)
  is **requeued silently** — no fault is charged to the configuration,
* a task that was dispatched when its worker died fails its future with
  :class:`WorkerDied`; the *executor* decides whether to resubmit
  (bounded) or quarantine, reusing the :mod:`repro.core.faults` taxonomy,
* broker shutdown fails all queued-but-undispatched futures with
  :class:`BrokerShutdown`.

Determinism is owned one layer up: the executor gathers results in
submission order, so *which* worker returns a result — and in what order
results arrive — never touches the history.
"""

from __future__ import annotations

import base64
import concurrent.futures
import json
import pickle
import select
import socket
import struct
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.core.durable import atomic_write_json

PROTOCOL_VERSION = 1

#: 4-byte big-endian frame length prefix.
HEADER = struct.Struct(">I")

#: Upper bound on a single frame; a peer announcing more is protocol abuse
#: (or a desynchronized stream) and gets disconnected rather than an OOM.
MAX_FRAME_BYTES = 64 * 1024 * 1024

DEFAULT_HEARTBEAT_S = 5.0

#: A worker is declared dead after this many heartbeat intervals of silence.
LIVENESS_INTERVALS = 3

_HANDSHAKE_TIMEOUT_S = 10.0


class TransportError(RuntimeError):
    """Base class for socket-transport failures."""


class HandshakeError(TransportError):
    """The peer spoke a different protocol version (or not the protocol)."""


class WorkerDied(TransportError):
    """A worker died (EOF, reset, or heartbeat silence) with a task in flight.

    Deliberately *not* an :class:`~repro.core.faults.EvaluationFault` and not
    a ``BrokenExecutor``: the executor catches it explicitly and applies its
    bounded-resubmission policy instead of failing the run.
    """


class BrokerShutdown(TransportError):
    """The broker shut down before this task was dispatched to any worker."""


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def send_frame(sock: socket.socket, message: Dict[str, Any], lock: Optional[threading.Lock] = None) -> None:
    """Send one JSON frame (optionally under a lock shared with a ping thread)."""
    data = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise TransportError(f"frame of {len(data)} bytes exceeds MAX_FRAME_BYTES")
    payload = HEADER.pack(len(data)) + data
    if lock is not None:
        with lock:
            sock.sendall(payload)
    else:
        sock.sendall(payload)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a frame boundary.

    ``socket.timeout`` propagates only when *zero* bytes have been read —
    once a frame is partially read we keep looping, because surfacing a
    timeout mid-frame would desynchronize the stream.  EOF mid-frame raises
    :class:`TransportError`.
    """
    chunks: List[bytes] = []
    got = 0
    while got < n:
        try:
            chunk = sock.recv(n - got)
        except socket.timeout:
            if got == 0:
                raise
            continue
        if not chunk:
            if got == 0:
                return None
            raise TransportError(f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Receive one JSON frame; ``None`` on clean EOF between frames."""
    header = _recv_exact(sock, HEADER.size)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"peer announced a {length}-byte frame (max {MAX_FRAME_BYTES})")
    body = _recv_exact(sock, length)
    if body is None:
        raise TransportError("connection closed between frame header and body")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise TransportError("frame is not an object with a 'type' field")
    return message


def dumps_b64(obj: Any) -> str:
    """Pickle + base64 an object for embedding in a JSON frame."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def loads_b64(payload: str) -> Any:
    """Inverse of :func:`dumps_b64`."""
    return pickle.loads(base64.b64decode(payload.encode("ascii")))


# ---------------------------------------------------------------------------
# Broker
# ---------------------------------------------------------------------------


class _Task:
    __slots__ = ("id", "payload", "future")

    def __init__(self, task_id: int, payload: str, future: concurrent.futures.Future) -> None:
        self.id = task_id
        self.payload = payload
        self.future = future


class _WorkerConn:
    __slots__ = ("sock", "id", "name", "send_lock", "last_seen", "inflight")

    def __init__(self, sock: socket.socket, worker_id: int, name: str) -> None:
        self.sock = sock
        self.id = worker_id
        self.name = name
        self.send_lock = threading.Lock()
        self.last_seen = time.monotonic()
        self.inflight: Optional[_Task] = None


class EvaluationBroker:
    """One evaluation queue, drained by any number of connected workers.

    ``submit(fn, *args)`` returns a ``concurrent.futures.Future`` resolving
    to ``fn(*args)`` as computed by *some* worker — which one is invisible to
    callers, keeping the executor's submission-order gather the sole arbiter
    of determinism.  Each worker holds at most one task at a time, so a dead
    worker loses at most one dispatched task (failed with
    :class:`WorkerDied`); everything still queued is untouched.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        announce_file: Optional[str] = None,
    ) -> None:
        if heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be > 0")
        self._host = host
        self._port = int(port)
        self.heartbeat_s = float(heartbeat_s)
        self._announce_file = announce_file
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._serve_threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self._workers_changed = threading.Condition(self._lock)
        self._conns: Dict[int, _WorkerConn] = {}
        self._queue: List[_Task] = []
        self._queue_lock = threading.Lock()
        self._queue_ready = threading.Condition(self._queue_lock)
        self._next_worker_id = 1
        self._next_task_id = 1
        self._closing = False
        self._started = False

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> "EvaluationBroker":
        """Bind, listen, and start accepting workers. Idempotent."""
        if self._started:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(64)
        self._listener = listener
        self._port = listener.getsockname()[1]
        self._started = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="broker-accept", daemon=True
        )
        self._accept_thread.start()
        if self._announce_file:
            atomic_write_json(self._announce_file, {"host": self._host, "port": self._port})
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` the broker is listening on (port resolved after start)."""
        return (self._host, self._port)

    def __enter__(self) -> "EvaluationBroker":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting, disconnect workers, fail undispatched futures.

        Signature-compatible with ``concurrent.futures.Executor.shutdown`` so
        the broker (and the pools wrapping it) slot into
        :class:`~repro.core.evaluator.WorkerPoolLifecycle` unchanged.
        """
        with self._lock:
            if self._closing:
                return
            self._closing = True
            conns = list(self._conns.values())
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for conn in conns:
            try:
                send_frame(conn.sock, {"type": "shutdown"}, lock=conn.send_lock)
            except OSError:
                pass
            try:
                conn.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.sock.close()
            except OSError:
                pass
        with self._queue_lock:
            leftovers, self._queue = self._queue, []
            self._queue_ready.notify_all()
        for task in leftovers:
            if not task.future.done():
                task.future.set_exception(BrokerShutdown("broker shut down before dispatch"))
        if wait:
            for thread in list(self._serve_threads):
                thread.join(timeout=5.0)
            if self._accept_thread is not None:
                self._accept_thread.join(timeout=5.0)

    # -- submission ---------------------------------------------------------------
    def submit(self, fn, *args) -> concurrent.futures.Future:
        """Enqueue ``fn(*args)`` for some worker; returns its future."""
        if self._closing:
            raise RuntimeError("this EvaluationBroker has been shut down")
        if not self._started:
            self.start()
        future: concurrent.futures.Future = concurrent.futures.Future()
        with self._queue_lock:
            task = _Task(self._next_task_id, dumps_b64((fn, args)), future)
            self._next_task_id += 1
            self._queue.append(task)
            self._queue_ready.notify()
        return future

    # -- observability / test hooks ----------------------------------------------
    @property
    def n_workers_connected(self) -> int:
        with self._lock:
            return len(self._conns)

    def wait_for_workers(self, n: int, timeout: Optional[float] = None) -> bool:
        """Block until ``n`` workers are connected (or the timeout elapses)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._workers_changed:
            while len(self._conns) < n:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._workers_changed.wait(timeout=remaining)
            return True

    def kill_worker(self, worker_id: Optional[int] = None, prefer_busy: bool = True) -> Optional[int]:
        """Force-close one worker connection (test hook for death drills).

        Prefers a worker with a dispatched task so the :class:`WorkerDied`
        resubmission path is actually exercised.  Returns the killed worker's
        id, or ``None`` when no worker is connected.
        """
        with self._lock:
            conns = list(self._conns.values())
        if worker_id is not None:
            victims = [c for c in conns if c.id == worker_id]
        elif prefer_busy:
            victims = [c for c in conns if c.inflight is not None] or conns
        else:
            victims = conns
        if not victims:
            return None
        victim = victims[0]
        try:
            victim.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            victim.sock.close()
        except OSError:
            pass
        return victim.id

    def debug_snapshot(self) -> Dict[str, Any]:
        """State dump for test diagnostics (deadline failures print this)."""
        with self._lock:
            workers = [
                {
                    "id": c.id,
                    "name": c.name,
                    "inflight": None if c.inflight is None else c.inflight.id,
                    "silent_for_s": round(time.monotonic() - c.last_seen, 3),
                }
                for c in self._conns.values()
            ]
        with self._queue_lock:
            queued = [t.id for t in self._queue]
        return {
            "address": list(self.address),
            "closing": self._closing,
            "workers": workers,
            "queued_task_ids": queued,
        }

    # -- internals ----------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closing:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                break
            threading.Thread(
                target=self._handshake_then_serve, args=(sock,), daemon=True
            ).start()

    def _handshake_then_serve(self, sock: socket.socket) -> None:
        try:
            sock.settimeout(_HANDSHAKE_TIMEOUT_S)
            hello = recv_frame(sock)
            if (
                hello is None
                or hello.get("type") != "hello"
                or hello.get("role") != "worker"
            ):
                send_frame(sock, {"type": "reject", "error": "expected a worker hello"})
                sock.close()
                return
            if hello.get("proto") != PROTOCOL_VERSION:
                send_frame(
                    sock,
                    {
                        "type": "reject",
                        "error": f"protocol version {hello.get('proto')!r} != {PROTOCOL_VERSION}",
                    },
                )
                sock.close()
                return
        except (OSError, TransportError):
            try:
                sock.close()
            except OSError:
                pass
            return
        with self._workers_changed:
            if self._closing:
                sock.close()
                return
            worker_id = self._next_worker_id
            self._next_worker_id += 1
            conn = _WorkerConn(sock, worker_id, str(hello.get("name") or f"worker-{worker_id}"))
            self._conns[worker_id] = conn
            self._workers_changed.notify_all()
        try:
            send_frame(
                sock,
                {
                    "type": "welcome",
                    "proto": PROTOCOL_VERSION,
                    "worker": worker_id,
                    "heartbeat_s": self.heartbeat_s,
                },
                lock=conn.send_lock,
            )
        except OSError:
            self._drop_conn(conn)
            return
        thread = threading.Thread(
            target=self._serve_worker, args=(conn,), name=f"broker-worker-{worker_id}", daemon=True
        )
        self._serve_threads.append(thread)
        thread.start()

    def _drop_conn(self, conn: _WorkerConn) -> None:
        with self._workers_changed:
            self._conns.pop(conn.id, None)
            self._workers_changed.notify_all()
        try:
            conn.sock.close()
        except OSError:
            pass

    def _requeue(self, task: _Task) -> None:
        """Put an undispatched task back at the head of the queue (no fault)."""
        with self._queue_lock:
            if self._closing:
                if not task.future.done():
                    task.future.set_exception(BrokerShutdown("broker shut down before dispatch"))
                return
            self._queue.insert(0, task)
            self._queue_ready.notify()

    def _take_task(self, timeout: float) -> Optional[_Task]:
        with self._queue_lock:
            if not self._queue:
                self._queue_ready.wait(timeout=timeout)
            if self._queue:
                return self._queue.pop(0)
            return None

    def _drain_control(self, conn: _WorkerConn) -> bool:
        """Consume buffered pings without blocking; False when the worker died."""
        while True:
            try:
                readable, _, _ = select.select([conn.sock], [], [], 0)
            except (OSError, ValueError):
                return False
            if not readable:
                return True
            try:
                conn.sock.settimeout(self.heartbeat_s)
                msg = recv_frame(conn.sock)
            except socket.timeout:
                return True
            except (OSError, TransportError):
                return False
            if msg is None:
                return False
            if msg.get("type") == "ping":
                conn.last_seen = time.monotonic()
            # Anything else between tasks is a stray late frame; ignore it.

    def _serve_worker(self, conn: _WorkerConn) -> None:
        liveness_s = self.heartbeat_s * LIVENESS_INTERVALS
        try:
            while not self._closing:
                # Detect a worker that died while idle *before* dispatching
                # to it: a task that never reaches a worker is requeued with
                # no fault charged, so idle deaths are invisible to callers.
                if not self._drain_control(conn):
                    return
                if time.monotonic() - conn.last_seen > liveness_s:
                    return
                task = self._take_task(timeout=min(self.heartbeat_s, 0.2))
                if task is None:
                    continue
                if task.future.cancelled():
                    continue
                try:
                    send_frame(
                        conn.sock,
                        {"type": "task", "id": task.id, "payload": task.payload},
                        lock=conn.send_lock,
                    )
                except OSError:
                    self._requeue(task)
                    return
                conn.inflight = task
                # On success _await_result clears conn.inflight; on death it
                # leaves the task attached so the finally-block backstop
                # fails its future with WorkerDied.
                if not self._await_result(conn, task):
                    return
        finally:
            self._fail_inflight(conn)
            self._drop_conn(conn)

    def _await_result(self, conn: _WorkerConn, task: _Task) -> bool:
        liveness_s = self.heartbeat_s * LIVENESS_INTERVALS
        conn.last_seen = time.monotonic()
        while True:
            try:
                conn.sock.settimeout(self.heartbeat_s)
                msg = recv_frame(conn.sock)
            except socket.timeout:
                if self._closing or time.monotonic() - conn.last_seen > liveness_s:
                    return False
                continue
            except (OSError, TransportError):
                return False
            if msg is None:
                return False
            kind = msg.get("type")
            if kind == "ping":
                conn.last_seen = time.monotonic()
                continue
            if kind != "result" or msg.get("id") != task.id:
                continue  # stray frame from a previous life of this id
            conn.inflight = None
            try:
                outcome = loads_b64(msg["payload"])
            except Exception as exc:  # undecodable result: charge the task
                if not task.future.done():
                    task.future.set_exception(
                        TransportError(f"undecodable result payload: {exc}")
                    )
                return True
            if not task.future.done():
                if msg.get("ok"):
                    task.future.set_result(outcome)
                else:
                    task.future.set_exception(outcome)
            return True

    def _fail_inflight(self, conn: _WorkerConn) -> None:
        task, conn.inflight = conn.inflight, None
        if task is not None and not task.future.done():
            task.future.set_exception(
                WorkerDied(
                    f"worker {conn.id} ({conn.name}) died with task {task.id} in flight"
                )
            )


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------


class EvalWorker:
    """A worker that connects to a broker, drains tasks, and heartbeats.

    ``run()`` returns ``True`` on a clean end (broker sent ``shutdown`` or
    ``max_tasks`` was reached) and ``False`` when the broker died.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: Optional[str] = None,
        connect_timeout_s: float = 30.0,
        max_tasks: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.name = name or f"{socket.gethostname()}-{id(self) & 0xFFFF:x}"
        self.connect_timeout_s = float(connect_timeout_s)
        self.max_tasks = max_tasks
        self.worker_id: Optional[int] = None
        self.heartbeat_s = DEFAULT_HEARTBEAT_S
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._stop = threading.Event()
        self._ping_thread: Optional[threading.Thread] = None

    def connect(self) -> int:
        """Connect with retry until ``connect_timeout_s``, then handshake.

        Returns the broker-assigned worker id and starts the heartbeat
        thread (pings flow even while an evaluation is running).
        """
        deadline = time.monotonic() + self.connect_timeout_s
        last_err: Optional[Exception] = None
        while True:
            try:
                sock = socket.create_connection((self.host, self.port), timeout=5.0)
                break
            except OSError as exc:
                last_err = exc
                if time.monotonic() >= deadline:
                    raise TransportError(
                        f"could not connect to broker {self.host}:{self.port} "
                        f"within {self.connect_timeout_s}s: {exc}"
                    ) from exc
                time.sleep(0.1)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(_HANDSHAKE_TIMEOUT_S)
        send_frame(
            sock,
            {"type": "hello", "proto": PROTOCOL_VERSION, "role": "worker", "name": self.name},
        )
        welcome = recv_frame(sock)
        if welcome is None or welcome.get("type") == "reject":
            sock.close()
            raise HandshakeError(
                f"broker rejected the handshake: {(welcome or {}).get('error', 'connection closed')}"
            )
        if welcome.get("type") != "welcome" or welcome.get("proto") != PROTOCOL_VERSION:
            sock.close()
            raise HandshakeError(f"unexpected handshake reply: {welcome}")
        self.worker_id = int(welcome["worker"])
        self.heartbeat_s = float(welcome.get("heartbeat_s") or DEFAULT_HEARTBEAT_S)
        self._sock = sock
        self._ping_thread = threading.Thread(
            target=self._ping_loop, name=f"eval-worker-ping-{self.worker_id}", daemon=True
        )
        self._ping_thread.start()
        return self.worker_id

    def _ping_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            try:
                assert self._sock is not None
                send_frame(self._sock, {"type": "ping"}, lock=self._send_lock)
            except OSError:
                return

    def run(self) -> bool:
        """Serve tasks until shutdown/broker death; returns clean-exit flag."""
        if self._sock is None:
            self.connect()
        assert self._sock is not None
        sock = self._sock
        served = 0
        clean = False
        try:
            while not self._stop.is_set():
                try:
                    sock.settimeout(1.0)
                    msg = recv_frame(sock)
                except socket.timeout:
                    continue
                except (OSError, TransportError):
                    break
                if msg is None:
                    break
                kind = msg.get("type")
                if kind == "shutdown":
                    clean = True
                    break
                if kind != "task":
                    continue
                reply = self._execute(msg)
                try:
                    send_frame(sock, reply, lock=self._send_lock)
                except OSError:
                    break
                served += 1
                if self.max_tasks is not None and served >= self.max_tasks:
                    clean = True
                    break
        finally:
            self.close()
        return clean

    def _execute(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        task_id = msg.get("id")
        try:
            fn, args = loads_b64(msg["payload"])
            outcome = fn(*args)
            ok = True
        except BaseException as exc:  # noqa: BLE001 — every failure crosses the wire
            outcome = exc
            ok = False
        try:
            payload = dumps_b64(outcome)
        except Exception as exc:
            # Unpicklable outcome (or exception): degrade to a typed error
            # string rather than silently dropping the task.
            ok = False
            payload = dumps_b64(
                TransportError(f"unpicklable task outcome ({type(outcome).__name__}): {exc}")
            )
        return {"type": "result", "id": task_id, "ok": ok, "payload": payload}

    def close(self) -> None:
        self._stop.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None


def spawn_local_workers(
    address: Tuple[str, int], n: int, *, name_prefix: str = "local"
) -> List[threading.Thread]:
    """Start ``n`` in-process worker threads against a broker address.

    Each thread runs a full :class:`EvalWorker` over real loopback TCP —
    the same framing/handshake/heartbeat path remote processes use — so
    ``workers: "local"`` scenarios exercise the genuine transport.
    """
    threads: List[threading.Thread] = []
    for i in range(n):
        worker = EvalWorker(address[0], address[1], name=f"{name_prefix}-{i}")

        def _run(w: EvalWorker = worker) -> None:
            try:
                w.connect()
                w.run()
            except TransportError:
                pass

        thread = threading.Thread(target=_run, name=f"eval-worker-{i}", daemon=True)
        thread.start()
        threads.append(thread)
    return threads


# ---------------------------------------------------------------------------
# Pool adapters (duck-type concurrent.futures.Executor for the executor)
# ---------------------------------------------------------------------------


class BrokerPool:
    """An executor-owned broker + its local worker threads.

    Built by :class:`~repro.core.executor.EvaluationExecutor` for
    ``backend="socket"`` without an injected broker; ``shutdown`` tears the
    whole transport down with the executor.
    """

    def __init__(self, broker: EvaluationBroker, worker_threads: List[threading.Thread]) -> None:
        self.broker = broker
        self._worker_threads = worker_threads

    def submit(self, fn, *args) -> concurrent.futures.Future:
        return self.broker.submit(fn, *args)

    def shutdown(self, wait: bool = True) -> None:
        self.broker.shutdown(wait=wait)
        if wait:
            for thread in self._worker_threads:
                thread.join(timeout=5.0)

    @property
    def _shutdown(self) -> bool:  # parity with concurrent.futures pools (tests peek)
        return self.broker._closing


class SharedBrokerPool:
    """A view on a broker owned by someone else (service/scheduler/test).

    ``shutdown`` is a no-op: closing one study's executor must not tear down
    the fleet other studies are still using.
    """

    def __init__(self, broker: EvaluationBroker) -> None:
        self.broker = broker

    def submit(self, fn, *args) -> concurrent.futures.Future:
        return self.broker.submit(fn, *args)

    def shutdown(self, wait: bool = True) -> None:  # noqa: ARG002 — lifecycle owned elsewhere
        return None

    @property
    def _shutdown(self) -> bool:
        return self.broker._closing


#: Defaults materialized into a scenario's ``executor.transport`` section.
DEFAULT_TRANSPORT: Dict[str, Any] = {
    "host": "127.0.0.1",
    "port": 0,
    "heartbeat_s": DEFAULT_HEARTBEAT_S,
    "workers": "local",
    "announce_file": None,
}


__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_TRANSPORT",
    "LIVENESS_INTERVALS",
    "TransportError",
    "HandshakeError",
    "WorkerDied",
    "BrokerShutdown",
    "send_frame",
    "recv_frame",
    "dumps_b64",
    "loads_b64",
    "EvaluationBroker",
    "EvalWorker",
    "spawn_local_workers",
    "BrokerPool",
    "SharedBrokerPool",
]
