"""Durable, fenced point leases: many workers safely drain one sweep.

One sweep directory is drained by N independent worker processes (hosts on
a shared filesystem tomorrow) by **leasing** points.  A lease is a small
checksummed JSON file under ``<sweep_dir>/leases/`` claimed with
``O_CREAT | O_EXCL`` — the filesystem's own atomic "exactly one creator"
primitive — and carrying three things:

* an **owner id** (``host:pid:nonce``), for observability and heartbeats;
* a **generation** — a monotonically increasing fencing token.  Every
  (re-)acquisition of a point's lease bumps it, and every durable effect of
  holding the lease (the manifest settle) is validated against it: a writer
  whose lease was taken over presents a stale generation and is rejected
  (:class:`StaleLeaseError`), so a paused-then-resumed worker can never
  clobber its successor's result;
* a **heartbeat timestamp**.  A live owner refreshes it every
  ``ttl_s / 3``; a lease whose heartbeat is older than ``ttl_s`` is
  *expired* and may be taken over by any worker (generation + 1).

The store itself is deliberately dumb about concurrency: the fresh-claim
fast path is atomic via ``O_EXCL``, and every mutating operation on an
*existing* lease (takeover, heartbeat, release) runs under the shared
:class:`~repro.core.durable.FileLock` so read-check-write cycles cannot
interleave.  Wall-clock time is injectable (``clock``) so tests control
expiry deterministically.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.core.durable import (
    CorruptArtifactError,
    FileLock,
    make_envelope,
    read_checksummed_json,
    write_checksummed_json,
)

#: Filename suffix of lease files inside the lease directory.
LEASE_SUFFIX = ".lease.json"

#: Default lease time-to-live: a heartbeat older than this marks the owner dead.
DEFAULT_TTL_S = 30.0


class LeaseError(RuntimeError):
    """Base class for lease protocol violations."""


class StaleLeaseError(LeaseError):
    """The caller's lease generation was fenced by a newer acquisition.

    Raised on heartbeat/release/settle attempts from an owner whose lease
    was taken over — the old writer must abandon its work; the new
    generation's result stands.
    """


def default_owner_id() -> str:
    """``host:pid:nonce`` — unique per worker process, stable within it."""
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


@dataclass(frozen=True)
class Lease:
    """An acquired (or observed) lease on one point."""

    point_id: str
    owner: str
    generation: int
    acquired_at: float
    heartbeat_at: float
    ttl_s: float

    def to_payload(self) -> Dict[str, Any]:
        return {
            "point_id": self.point_id,
            "owner": self.owner,
            "generation": int(self.generation),
            "acquired_at": float(self.acquired_at),
            "heartbeat_at": float(self.heartbeat_at),
            "ttl_s": float(self.ttl_s),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Lease":
        return cls(
            point_id=str(payload["point_id"]),
            owner=str(payload["owner"]),
            generation=int(payload["generation"]),
            acquired_at=float(payload["acquired_at"]),
            heartbeat_at=float(payload["heartbeat_at"]),
            ttl_s=float(payload["ttl_s"]),
        )

    def expired(self, now: float) -> bool:
        """Whether the heartbeat is older than the ttl at time ``now``."""
        return (now - self.heartbeat_at) > self.ttl_s


class LeaseStore:
    """Lease files for one sweep directory.

    Parameters
    ----------
    lease_dir:
        Directory holding the lease files (``<sweep_dir>/leases``).
    owner:
        This worker's owner id (defaults to :func:`default_owner_id`).
    ttl_s:
        Time-to-live stamped into leases this store acquires.
    clock:
        Wall-clock source (``time.time``); injectable for deterministic
        expiry in tests.
    lock:
        The shared :class:`FileLock` serializing mutations of existing
        leases.  Pass the sweep-wide lock so lease takeovers and manifest
        updates share one critical section; defaults to a lock file inside
        the lease directory.
    """

    def __init__(
        self,
        lease_dir: Union[str, Path],
        *,
        owner: Optional[str] = None,
        ttl_s: float = DEFAULT_TTL_S,
        clock: Callable[[], float] = time.time,
        lock: Optional[FileLock] = None,
    ) -> None:
        if float(ttl_s) <= 0:
            raise ValueError("ttl_s must be positive")
        self.lease_dir = Path(lease_dir)
        self.owner = owner if owner is not None else default_owner_id()
        self.ttl_s = float(ttl_s)
        self.clock = clock
        self.lock = lock if lock is not None else FileLock(self.lease_dir / ".leases.lock")

    # -- paths -----------------------------------------------------------------
    def path_for(self, point_id: str) -> Path:
        return self.lease_dir / f"{point_id}{LEASE_SUFFIX}"

    def list_point_ids(self) -> List[str]:
        """Point ids of every lease file currently on disk (sorted)."""
        if not self.lease_dir.is_dir():
            return []
        return sorted(
            p.name[: -len(LEASE_SUFFIX)]
            for p in self.lease_dir.iterdir()
            if p.name.endswith(LEASE_SUFFIX)
        )

    # -- observation -----------------------------------------------------------
    def peek(self, point_id: str) -> Optional[Lease]:
        """The current lease on ``point_id``, or ``None``.

        Raises :class:`~repro.core.durable.CorruptArtifactError` when the
        file exists but fails its checksum — callers decide whether that
        means "treat as expired" (claiming) or "report" (doctor).
        """
        path = self.path_for(point_id)
        if not path.exists():
            return None
        return Lease.from_payload(read_checksummed_json(path))

    def is_claimable(self, point_id: str, *, now: Optional[float] = None) -> bool:
        """Whether a claim on ``point_id`` would succeed right now."""
        try:
            lease = self.peek(point_id)
        except CorruptArtifactError:
            return True  # corrupt lease = crash residue; a claim replaces it
        if lease is None:
            return True
        return lease.expired(self.clock() if now is None else now)

    # -- acquisition -------------------------------------------------------------
    def try_acquire(self, point_id: str, *, generation_floor: int = 0) -> Optional[Lease]:
        """Claim ``point_id``; returns the held lease or ``None`` if live.

        ``generation_floor`` is the highest generation the caller has seen
        recorded elsewhere (the sweep manifest): the new lease's generation
        is strictly greater than both it and any on-disk lease's, so fencing
        survives even a deleted lease file.

        Fresh claims (no lease file) go through ``O_CREAT | O_EXCL`` —
        atomic on its own.  Takeovers of an existing (expired or corrupt)
        lease run under :attr:`lock`.
        """
        path = self.path_for(point_id)
        if not path.exists():
            lease = self._new_lease(point_id, generation=int(generation_floor) + 1)
            if self._create_exclusive(path, lease):
                return lease
            # Lost the creation race: fall through to the locked path.
        with self.lock:
            return self._acquire_locked(point_id, generation_floor=generation_floor)

    def acquire_locked(self, point_id: str, *, generation_floor: int = 0) -> Optional[Lease]:
        """:meth:`try_acquire` for callers already holding :attr:`lock`."""
        path = self.path_for(point_id)
        if not path.exists():
            lease = self._new_lease(point_id, generation=int(generation_floor) + 1)
            if self._create_exclusive(path, lease):
                return lease
        return self._acquire_locked(point_id, generation_floor=generation_floor)

    def _acquire_locked(self, point_id: str, *, generation_floor: int) -> Optional[Lease]:
        path = self.path_for(point_id)
        on_disk_generation = 0
        if path.exists():
            try:
                current = Lease.from_payload(read_checksummed_json(path))
            except CorruptArtifactError:
                current = None  # corrupt residue: replace it
            if current is not None:
                if not current.expired(self.clock()):
                    return None
                on_disk_generation = current.generation
        lease = self._new_lease(
            point_id, generation=max(on_disk_generation, int(generation_floor)) + 1
        )
        write_checksummed_json(path, lease.to_payload())
        return lease

    def _new_lease(self, point_id: str, *, generation: int) -> Lease:
        now = self.clock()
        return Lease(
            point_id=point_id,
            owner=self.owner,
            generation=int(generation),
            acquired_at=now,
            heartbeat_at=now,
            ttl_s=self.ttl_s,
        )

    def _create_exclusive(self, path: Path, lease: Lease) -> bool:
        """Atomically create ``path`` holding ``lease``; False if it exists."""
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
        try:
            data = json.dumps(make_envelope(lease.to_payload()), indent=2, sort_keys=True)
            os.write(fd, data.encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        return True

    # -- keeping and yielding ----------------------------------------------------
    def heartbeat(self, lease: Lease) -> Lease:
        """Refresh the heartbeat; raises :class:`StaleLeaseError` if fenced."""
        with self.lock:
            current = self._verify_held(lease)
            refreshed = replace(current, heartbeat_at=self.clock())
            write_checksummed_json(self.path_for(lease.point_id), refreshed.to_payload())
            return refreshed

    def release(self, lease: Lease) -> None:
        """Remove the lease file; raises :class:`StaleLeaseError` if fenced.

        A fenced release leaves the successor's file untouched.
        """
        with self.lock:
            self._verify_held(lease)
            self.path_for(lease.point_id).unlink(missing_ok=True)

    def release_locked(self, lease: Lease) -> None:
        """:meth:`release` for callers already holding :attr:`lock`."""
        self._verify_held(lease)
        self.path_for(lease.point_id).unlink(missing_ok=True)

    def _verify_held(self, lease: Lease) -> Lease:
        try:
            current = self.peek(lease.point_id)
        except CorruptArtifactError as exc:
            raise StaleLeaseError(
                f"lease on {lease.point_id!r} is corrupt on disk ({exc}); "
                "treat the claim as lost"
            ) from None
        if current is None:
            raise StaleLeaseError(
                f"lease on {lease.point_id!r} no longer exists (released or repaired away)"
            )
        if current.generation != lease.generation or current.owner != lease.owner:
            raise StaleLeaseError(
                f"lease on {lease.point_id!r} was taken over: held generation "
                f"{lease.generation} by {lease.owner!r}, current generation "
                f"{current.generation} by {current.owner!r}"
            )
        return current


__all__ = [
    "LEASE_SUFFIX",
    "DEFAULT_TTL_S",
    "LeaseError",
    "StaleLeaseError",
    "default_owner_id",
    "Lease",
    "LeaseStore",
]
