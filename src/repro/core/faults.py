"""Fault tolerance for black-box evaluations: retries, timeouts, quarantine.

The paper's real operating mode is a crowdsourced fleet of 83 consumer
devices — evaluations hang, crash, or return garbage as a matter of course.
This module makes those failures *first-class data* instead of study-killing
exceptions:

* a typed failure taxonomy (:class:`EvaluationTimeout`, :class:`WorkerCrash`,
  :class:`EvaluatorError`, :class:`InvalidResult`) with stable ``kind``
  strings that end up in ``history.jsonl``,
* a :class:`FaultPolicy` — bounded retries with seeded exponential backoff +
  jitter, a per-evaluation timeout, and poison-config *quarantine*: a
  configuration that keeps failing is recorded with penalty metrics (worst
  possible objective values) so the search degrades gracefully instead of
  dying,
* a deterministic chaos harness, :class:`FaultInjectingEvaluator`, that
  injects drop/delay/corrupt/crash faults from a *seeded fault trace*: every
  injection decision is a pure function of ``(seed, configuration, attempt)``,
  never of wall clock or thread identity.

Determinism is the design constraint everything above bends around.  The
repo's core invariant — same seed → bit-identical ``history.jsonl`` across
serial, concurrent and resumed execution — must survive faults, so:

* injected delays are *virtual*: the injector sleeps a tiny capped real
  amount but reports the full configured delay through a thread-local,
  and the retry loop classifies timeouts on that virtual duration.  Real
  (non-injected) evaluations fall back to wall-clock timing, which is
  inherently best-effort and documented as such.
* backoff sleeps are derived from the policy seed, so the *timing* of a
  retry varies but its *outcome* (and thus the history) never does,
* retry decisions depend only on the failure kind, never on which worker
  observed it.

``attempt`` metadata is attached to the history record of the evaluation it
belongs to and round-trips through checkpoints, so a killed-and-resumed run
replays the identical fault trace.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.evaluator import EvaluationBudgetExceeded, Evaluator, MetricDict
from repro.core.space import Configuration
from repro.utils.rng import check_probability, derive_seed

#: Stable taxonomy labels recorded in ``history.jsonl`` attempt metadata.
KIND_TIMEOUT = "timeout"
KIND_CRASH = "crash"
KIND_EVALUATOR_ERROR = "evaluator_error"
KIND_INVALID = "invalid"
FAULT_KINDS = (KIND_TIMEOUT, KIND_CRASH, KIND_EVALUATOR_ERROR, KIND_INVALID)

#: Injected delays sleep at most this long for real — the remainder is
#: virtual, so chaos runs stay fast *and* deterministic.
REAL_SLEEP_CAP_S = 0.005


class EvaluationFault(RuntimeError):
    """Base class of the failure taxonomy; ``kind`` is the stable label."""

    kind = KIND_EVALUATOR_ERROR

    def __init__(self, message: str, config: Optional[Configuration] = None) -> None:
        super().__init__(message)
        self.config = config


class EvaluationTimeout(EvaluationFault):
    """The evaluation exceeded the policy's per-evaluation timeout."""

    kind = KIND_TIMEOUT


class WorkerCrash(EvaluationFault):
    """The worker executing the evaluation died (or was injected to)."""

    kind = KIND_CRASH


class EvaluatorError(EvaluationFault):
    """The evaluation function raised an ordinary exception."""

    kind = KIND_EVALUATOR_ERROR


class InvalidResult(EvaluationFault):
    """The evaluation returned unusable metrics (missing/non-finite objectives)."""

    kind = KIND_INVALID


_FAULT_TYPES: Dict[str, type] = {
    KIND_TIMEOUT: EvaluationTimeout,
    KIND_CRASH: WorkerCrash,
    KIND_EVALUATOR_ERROR: EvaluatorError,
    KIND_INVALID: InvalidResult,
}


def config_identity(config: Configuration) -> str:
    """A stable, human-readable identity string for ``config``.

    Used both as the RNG label for per-configuration fault decisions and to
    attribute failures in exception messages ("which configuration broke?")
    without digging through worker tracebacks.
    """
    try:
        values = config.to_dict()
    except AttributeError:  # plain mappings in tests
        values = dict(config)
    return json.dumps(values, sort_keys=True, default=str)


def wrap_failure(config: Configuration, exc: BaseException) -> EvaluationFault:
    """Wrap an arbitrary failure with the offending configuration's identity."""
    return EvaluatorError(
        f"configuration {config_identity(config)} failed: {type(exc).__name__}: {exc}",
        config=config,
    )


# ---------------------------------------------------------------------------
# Per-call context (attempt index, virtual delay)
# ---------------------------------------------------------------------------

#: The retry loop and the evaluation function always run in the same thread
#: (inline path) or the same worker process, so a thread-local is enough to
#: hand the attempt index down and the injected virtual delay back up —
#: without changing the ``config -> metrics`` calling convention.
_CTX = threading.local()


def current_attempt() -> int:
    """The retry attempt index of the evaluation running in this thread (0-based)."""
    return int(getattr(_CTX, "attempt", 0))


def _reset_ctx(attempt: int) -> None:
    _CTX.attempt = int(attempt)
    _CTX.injected_delay_s = None


# ---------------------------------------------------------------------------
# FaultPolicy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultPolicy:
    """How the executor responds to failing evaluations.

    Attributes
    ----------
    max_retries:
        Additional attempts after the first failure (``0`` = no retries).
    timeout_s:
        Per-evaluation timeout.  Injected (virtual) delays are classified
        deterministically; real wall-clock timing is best-effort and, with a
        thread backend, post-hoc — a slow evaluation is *classified* as a
        timeout after it returns rather than preempted.
    quarantine:
        When retries are exhausted, record the configuration with
        :meth:`penalty_metrics` (worst-case objective values, infeasible by
        construction) instead of raising — the search continues, the run
        finishes "degraded".
    penalty:
        Magnitude of the penalty objective values.
    backoff_base_s / backoff_factor / backoff_jitter / backoff_max_s:
        Exponential backoff between attempts:
        ``base * factor**attempt + U(0, jitter)``, capped at ``backoff_max_s``.
        The jitter draw is seeded per ``(configuration, attempt)`` so retry
        *timing* is reproducible too.
    seed:
        Seed of the backoff-jitter stream (no effect on history content).
    """

    max_retries: int = 0
    timeout_s: Optional[float] = None
    quarantine: bool = True
    penalty: float = 1e9
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.0
    backoff_max_s: Optional[float] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if int(self.max_retries) < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.timeout_s is not None and not self.timeout_s > 0:
            raise ValueError(f"timeout_s must be > 0 (or None), got {self.timeout_s}")
        if not self.penalty > 0:
            raise ValueError(f"penalty must be > 0, got {self.penalty}")
        if self.backoff_base_s < 0:
            raise ValueError(f"backoff_base_s must be >= 0, got {self.backoff_base_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.backoff_jitter < 0:
            raise ValueError(f"backoff_jitter must be >= 0, got {self.backoff_jitter}")
        if self.backoff_max_s is not None and self.backoff_max_s < 0:
            raise ValueError(f"backoff_max_s must be >= 0 (or None), got {self.backoff_max_s}")

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any], seed: Optional[int] = None) -> "FaultPolicy":
        """Build a policy from a validated scenario ``faults`` section."""
        return cls(
            max_retries=int(spec.get("max_retries", 0)),
            timeout_s=spec.get("timeout_s"),
            quarantine=bool(spec.get("quarantine", True)),
            penalty=float(spec.get("penalty", 1e9)),
            backoff_base_s=float(spec.get("backoff_base_s", 0.0)),
            backoff_factor=float(spec.get("backoff_factor", 2.0)),
            backoff_jitter=float(spec.get("backoff_jitter", 0.0)),
            backoff_max_s=spec.get("backoff_max_s"),
            seed=seed,
        )

    def with_seed(self, seed: Optional[int]) -> "FaultPolicy":
        """A copy of this policy with a different jitter seed."""
        return replace(self, seed=seed)

    def penalty_metrics(self, objectives: Iterable[Any]) -> MetricDict:
        """Worst-case metrics for a quarantined configuration.

        Each objective gets ``penalty`` in its *worst* direction (``+penalty``
        when minimizing, ``-penalty`` when maximizing), so a quarantined
        record is dominated by every genuine evaluation and infeasible under
        any finite objective limit.
        """
        return {
            o.name: float(self.penalty) if getattr(o, "minimize", True) else -float(self.penalty)
            for o in objectives
        }

    def backoff_delay_s(self, config: Configuration, attempt: int) -> float:
        """Deterministic backoff before retrying ``config`` after ``attempt``."""
        delay = self.backoff_base_s * (self.backoff_factor ** attempt)
        if self.backoff_jitter > 0:
            u = derive_seed(
                self.seed, config_identity(config), f"attempt-{attempt}", "backoff"
            ) / float(2**31 - 1)
            delay += u * self.backoff_jitter
        if self.backoff_max_s is not None:
            delay = min(delay, self.backoff_max_s)
        return max(delay, 0.0)

    def sleep_before_retry(self, config: Configuration, attempt: int) -> None:
        """Sleep the backoff delay (no-op when the delay is zero)."""
        delay = self.backoff_delay_s(config, attempt)
        if delay > 0:
            time.sleep(delay)


# ---------------------------------------------------------------------------
# Chaos injection
# ---------------------------------------------------------------------------


class FaultInjectingEvaluator:
    """Deterministic chaos harness wrapping a ``config -> metrics`` callable.

    Every injection decision is a pure function of
    ``(seed, configuration, attempt, fault kind)`` through
    :func:`~repro.utils.rng.derive_seed` — a *seeded fault trace*.  The same
    seed therefore injects the identical fault sequence regardless of worker
    count, backend, or resume point, which is what keeps chaos runs
    bit-identical.

    Fault kinds (checked in this order, first hit wins):

    * ``drop``   — the worker "dies": raises :class:`WorkerCrash`.
    * ``crash``  — the evaluation function raises an ordinary exception.
    * ``delay``  — the evaluation "hangs": a virtual delay of ``delay_s`` is
      reported (real sleep capped at :data:`REAL_SLEEP_CAP_S`), tripping the
      policy timeout when ``delay_s > timeout_s``.
    * ``corrupt`` — the evaluation returns garbage: every metric becomes NaN.

    Instances are picklable (plain attributes, module-level ``fn``) so the
    harness works identically under the process backend.
    """

    def __init__(
        self,
        fn: Callable[[Configuration], MetricDict],
        *,
        drop_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_s: float = 0.0,
        corrupt_rate: float = 0.0,
        crash_rate: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        self.fn = fn
        self.drop_rate = check_probability(drop_rate, "drop_rate")
        self.delay_rate = check_probability(delay_rate, "delay_rate")
        self.corrupt_rate = check_probability(corrupt_rate, "corrupt_rate")
        self.crash_rate = check_probability(crash_rate, "crash_rate")
        if delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {delay_s}")
        self.delay_s = float(delay_s)
        self.seed = seed

    def _roll(self, key: str, attempt: int, kind: str) -> float:
        """A uniform draw in [0, 1) that is a pure function of its labels.

        The attempt index is passed as a *string* label: string labels go
        through FNV-1a hashing inside :func:`~repro.utils.rng.derive_seed`,
        so consecutive attempts decorrelate (integer labels only shift the
        LCG state linearly, which would make retry outcomes near-copies of
        the first attempt).
        """
        return derive_seed(self.seed, key, f"attempt-{attempt}", kind) / float(2**31 - 1)

    def __call__(self, config: Configuration) -> MetricDict:
        key = config_identity(config)
        attempt = current_attempt()
        if self.drop_rate > 0 and self._roll(key, attempt, "drop") < self.drop_rate:
            raise WorkerCrash(
                f"injected worker drop for {key} (attempt {attempt})", config=config
            )
        if self.crash_rate > 0 and self._roll(key, attempt, "crash") < self.crash_rate:
            raise RuntimeError(f"injected evaluator crash for {key} (attempt {attempt})")
        if (
            self.delay_s > 0
            and self.delay_rate > 0
            and self._roll(key, attempt, "delay") < self.delay_rate
        ):
            time.sleep(min(self.delay_s, REAL_SLEEP_CAP_S))
            _CTX.injected_delay_s = self.delay_s
        metrics = dict(self.fn(config))
        if self.corrupt_rate > 0 and self._roll(key, attempt, "corrupt") < self.corrupt_rate:
            metrics = {k: float("nan") for k in metrics}
        return metrics


# ---------------------------------------------------------------------------
# The retry loop
# ---------------------------------------------------------------------------


def _objectives_finite(metrics: Mapping[str, Any], objectives: Iterable[Any]) -> bool:
    import math

    for o in objectives:
        try:
            value = float(metrics[o.name])
        except (KeyError, TypeError, ValueError):
            return False
        if not math.isfinite(value):
            return False
    return True


def call_with_policy(
    evaluator: Evaluator, config: Configuration, policy: FaultPolicy
) -> Tuple[MetricDict, Optional[List[Dict[str, Any]]]]:
    """Evaluate ``config`` under ``policy``: retry, classify, quarantine.

    Returns ``(metrics, attempts)`` where ``attempts`` is ``None`` for a
    clean first-try success or a list of structured failure entries
    (``{"attempt", "kind", "error"}``; the final entry carries
    ``"quarantined": true`` when the configuration was quarantined).

    Module-level so process pools can pickle the submission.  Budget
    exhaustion (:class:`~repro.core.evaluator.EvaluationBudgetExceeded`)
    is never retried or swallowed — it is control flow, not a fault.
    """
    attempts: List[Dict[str, Any]] = []
    last: Tuple[str, str] = (KIND_EVALUATOR_ERROR, "unknown failure")
    for attempt in range(int(policy.max_retries) + 1):
        _reset_ctx(attempt)
        start = time.monotonic()
        fault_kind: Optional[str] = None
        fault_msg = ""
        metrics: Optional[MetricDict] = None
        try:
            metrics = evaluator.evaluate([config])[0]
        except EvaluationBudgetExceeded:
            _reset_ctx(0)
            raise
        except EvaluationFault as exc:
            fault_kind, fault_msg = exc.kind, str(exc)
        except KeyError as exc:
            fault_kind, fault_msg = KIND_INVALID, f"missing objective value {exc}"
        except Exception as exc:  # noqa: BLE001 — classification is the point
            fault_kind, fault_msg = KIND_EVALUATOR_ERROR, f"{type(exc).__name__}: {exc}"
        if fault_kind is None:
            injected = getattr(_CTX, "injected_delay_s", None)
            elapsed = injected if injected is not None else time.monotonic() - start
            if policy.timeout_s is not None and elapsed > policy.timeout_s:
                fault_kind = KIND_TIMEOUT
                fault_msg = (
                    f"evaluation took {elapsed:.6g}s (timeout_s={policy.timeout_s:g})"
                )
            elif not _objectives_finite(metrics, evaluator.objectives):
                fault_kind, fault_msg = KIND_INVALID, "non-finite objective values"
        if fault_kind is None:
            _reset_ctx(0)
            return metrics, (attempts or None)
        attempts.append({"attempt": attempt, "kind": fault_kind, "error": fault_msg})
        last = (fault_kind, fault_msg)
        if attempt < policy.max_retries:
            policy.sleep_before_retry(config, attempt)
    _reset_ctx(0)
    if policy.quarantine:
        attempts[-1] = dict(attempts[-1], quarantined=True)
        return policy.penalty_metrics(evaluator.objectives), attempts
    kind, msg = last
    raise _FAULT_TYPES[kind](
        f"configuration {config_identity(config)} failed after "
        f"{len(attempts)} attempt(s): {msg}",
        config=config,
    )


# ---------------------------------------------------------------------------
# Attempt-metadata helpers
# ---------------------------------------------------------------------------


def attempts_quarantined(attempts: Optional[List[Dict[str, Any]]]) -> bool:
    """Whether attempt metadata marks the record as quarantined."""
    return bool(attempts) and any(a.get("quarantined") for a in attempts)


def summarize_faults(records: Iterable[Any]) -> Dict[str, Any]:
    """Aggregate attempt metadata across history records for reports.

    Returns ``n_affected`` (records with at least one failed attempt),
    ``n_retried_ok`` (affected records that eventually succeeded),
    ``n_quarantined``, and per-kind failure counts in ``by_kind``.
    """
    n_affected = n_retried_ok = n_quarantined = 0
    by_kind: Dict[str, int] = {}
    for record in records:
        attempts = getattr(record, "attempts", None)
        if not attempts:
            continue
        n_affected += 1
        if attempts_quarantined(attempts):
            n_quarantined += 1
        else:
            n_retried_ok += 1
        for a in attempts:
            kind = str(a.get("kind", KIND_EVALUATOR_ERROR))
            by_kind[kind] = by_kind.get(kind, 0) + 1
    return {
        "n_affected": n_affected,
        "n_retried_ok": n_retried_ok,
        "n_quarantined": n_quarantined,
        "by_kind": dict(sorted(by_kind.items())),
    }


__all__ = [
    "FAULT_KINDS",
    "KIND_TIMEOUT",
    "KIND_CRASH",
    "KIND_EVALUATOR_ERROR",
    "KIND_INVALID",
    "EvaluationFault",
    "EvaluationTimeout",
    "WorkerCrash",
    "EvaluatorError",
    "InvalidResult",
    "FaultPolicy",
    "FaultInjectingEvaluator",
    "call_with_policy",
    "config_identity",
    "wrap_failure",
    "current_attempt",
    "attempts_quarantined",
    "summarize_faults",
]
