"""Multi-tenant study scheduling on one shared worker budget.

The paper's tool runs as a *service*: many explorations — different users,
devices, seeds — queue up and share one evaluation fleet (83 boards in the
crowd scenario).  :class:`StudyScheduler` is that layer: a queue of scenario
submissions is admitted into a bounded number of concurrent study slots,
each study runs crash-isolated (one failed study never poisons its
siblings), and an optional total worker budget is split fair-share across
the slots.

Determinism is inherited, not hoped for: every study runs on its own
engine/executor stack, whose history is bit-identical for any worker count
(see :mod:`repro.core.executor`), so a sweep with ``max_concurrent_studies=k``
produces *per-point* results identical to running each scenario alone —
the invariant the sweep tests pin down.

Admission order is a pluggable policy (:data:`SCHEDULE_POLICY_REGISTRY`):

* ``"fifo"`` — strict submission order.
* ``"fair_share"`` (default) — round-robin across tenants: the tenant with
  the fewest admitted studies goes next, ties broken by submission order.
  With a single tenant this degenerates to FIFO.
* ``"preempting"`` — highest priority first (submissions carry an integer
  ``priority``, higher wins; missing = 0), ties broken by submission order.
  The live service pairs this admission order with actual preemption:
  when every slot is busy, a strictly lower-priority *running* study is
  parked at its next iteration boundary to make room (see
  :mod:`repro.core.service`).

Policies only choose *which queued study starts next*; they never affect a
study's result.
"""

from __future__ import annotations

import concurrent.futures
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, TypeVar, Union

from repro.core.registry import SCHEDULE_POLICY_REGISTRY, register_schedule_policy
from repro.core.scenario import Scenario
from repro.core.study import SCENARIO_FILE, Study, StudyResult, run_status

_T = TypeVar("_T")
_R = TypeVar("_R")


@register_schedule_policy("fifo")
def fifo_policy(
    pending: Sequence["StudySubmission"], started_per_tenant: Mapping[str, int]
) -> int:
    """Admit strictly in submission order."""
    return 0


@register_schedule_policy("fair_share")
def fair_share_policy(
    pending: Sequence["StudySubmission"], started_per_tenant: Mapping[str, int]
) -> int:
    """Admit the tenant with the fewest studies admitted so far.

    Ties break by queue position, so a single tenant (e.g. one sweep) sees
    plain FIFO and the outcome is deterministic for any completion timing.
    """
    best = 0
    best_key = None
    for i, submission in enumerate(pending):
        key = (started_per_tenant.get(submission.tenant, 0), i)
        if best_key is None or key < best_key:
            best, best_key = i, key
    return best


def submission_priority(submission: Any) -> int:
    """Admission priority of a submission (higher wins; absent/None = 0)."""
    priority = getattr(submission, "priority", 0)
    return 0 if priority is None else int(priority)


@register_schedule_policy("preempting")
def preempting_policy(
    pending: Sequence["StudySubmission"], started_per_tenant: Mapping[str, int]
) -> int:
    """Admit the highest-priority submission; ties break by queue position.

    The admission half of the live service's priority scheme — the policy
    itself never parks anything (policies only pick from the *pending*
    queue); the service layer performs the matching preemption of running
    studies.  Usable as a plain batch policy too: a priority-ordered FIFO.
    """
    best = 0
    best_key = None
    for i, submission in enumerate(pending):
        key = (-submission_priority(submission), i)
        if best_key is None or key < best_key:
            best, best_key = i, key
    return best


class MapOrderedError(RuntimeError):
    """One or more ``map_ordered`` items failed — after every item ran.

    ``failures`` holds ``(index, exception)`` pairs in item order, so a
    crowd-fleet caller can see *every* failing device at once instead of
    losing the in-flight work of the fleet to the first flaky one.
    """

    def __init__(self, failures: Sequence[Tuple[int, BaseException]], n_items: int) -> None:
        self.failures: List[Tuple[int, BaseException]] = list(failures)
        preview = "; ".join(
            f"item {i}: {type(e).__name__}: {e}" for i, e in self.failures[:3]
        )
        more = "" if len(self.failures) <= 3 else f" (+{len(self.failures) - 3} more)"
        super().__init__(f"{len(self.failures)} of {n_items} items failed: {preview}{more}")


def map_ordered(
    fn: Callable[[_T], _R], items: Sequence[_T], *, max_concurrent: int = 1
) -> List[_R]:
    """Run ``fn`` over ``items`` on a thread pool, results in item order.

    The deterministic fan-out primitive the crowd app uses for its device
    fleet: tasks run concurrently but results always come back in submission
    order, so downstream consumers (database uploads, reports) see the same
    sequence as a serial run.  ``max_concurrent <= 1`` is the inline serial
    path.

    Failures are *drained, not fail-fast*: every item runs to completion
    (serial and concurrent paths alike), then a single
    :class:`MapOrderedError` reports **all** failing items — no in-flight
    work is abandoned and no failure is shadowed by an earlier one.
    """
    items = list(items)
    results: List[Optional[_R]] = [None] * len(items)
    failures: List[Tuple[int, BaseException]] = []
    if max_concurrent <= 1 or len(items) <= 1:
        for i, item in enumerate(items):
            try:
                results[i] = fn(item)
            except Exception as exc:  # noqa: BLE001 — collected, then re-raised
                failures.append((i, exc))
    else:
        with concurrent.futures.ThreadPoolExecutor(max_workers=int(max_concurrent)) as pool:
            futures = [pool.submit(fn, item) for item in items]
            for i, future in enumerate(futures):
                try:
                    results[i] = future.result()
                except Exception as exc:  # noqa: BLE001
                    failures.append((i, exc))
    if failures:
        raise MapOrderedError(failures, len(items))
    return results


@dataclass
class StudySubmission:
    """One queued study: a scenario plus its host-side bindings.

    Attributes
    ----------
    key:
        Caller-chosen identifier (a sweep uses the point id); reported back
        on the outcome.
    scenario:
        Anything :meth:`~repro.core.scenario.Scenario.coerce` accepts.
    run_dir:
        Optional run directory for the PR-4 versioned artifact layout.
    tenant:
        Fair-share accounting bucket (one tenant per submitting client).
    resume:
        When set and ``run_dir`` already holds a complete run, the result is
        reloaded without re-running; an incomplete run dir resumes from its
        checkpoint; anything else runs fresh.
    priority:
        Admission priority (higher wins) read by the ``"preempting"``
        policy; other policies ignore it.
    evaluate / runner / executor:
        Host bindings forwarded to :class:`~repro.core.study.Study`.
    """

    key: str
    scenario: Union[Scenario, Mapping[str, Any], str, Path]
    run_dir: Optional[Union[str, Path]] = None
    tenant: str = "default"
    resume: bool = False
    priority: int = 0
    evaluate: Optional[Callable] = None
    runner: Any = None
    executor: Any = None


@dataclass
class StudyOutcome:
    """What became of one submission (always returned, never raised).

    ``status`` is ``"complete"``, ``"degraded"`` (the study finished but
    quarantined configurations carry penalty metrics — a usable, second-class
    result), or ``"failed"``.
    """

    key: str
    status: str  # "complete" | "degraded" | "failed"
    result: Optional[StudyResult] = None
    error: Optional[str] = None
    tenant: str = "default"
    #: The run dir already held a complete run and was reloaded, not re-run.
    reused: bool = False


class StudyScheduler:
    """Run many studies concurrently on a bounded slot/worker budget.

    Parameters
    ----------
    max_concurrent_studies:
        Number of studies running at once (slots).
    worker_budget:
        Total evaluation workers shared by all slots; each admitted study's
        executor is capped at ``max(1, worker_budget // max_concurrent_studies)``
        workers (fair share).  ``None`` leaves every scenario's own
        ``executor.n_workers`` untouched.  Either way each point's history is
        bit-identical to a standalone run — worker counts never change
        results, only wall clock.
    policy:
        Admission policy name (:data:`SCHEDULE_POLICY_REGISTRY`) or callable.
    study_max_retries:
        Additional attempts for a study whose run *raised* (``0`` = none).
        Retries take the resume path when the study has a run directory, so
        only the missing work re-runs and the resumed history is identical
        to an uninterrupted run.  Degraded studies are terminal, not retried
        (their artifacts are complete; re-running would re-quarantine the
        same configurations — the fault trace is deterministic).
    retry_backoff_s:
        Base delay before study-level retry ``k`` (``backoff * 2**k``).
    """

    def __init__(
        self,
        max_concurrent_studies: int = 1,
        *,
        worker_budget: Optional[int] = None,
        policy: Union[str, Callable] = "fair_share",
        study_max_retries: int = 0,
        retry_backoff_s: float = 0.0,
        broker: Optional[Any] = None,
    ) -> None:
        if int(max_concurrent_studies) < 1:
            raise ValueError("max_concurrent_studies must be >= 1")
        if worker_budget is not None and int(worker_budget) < 1:
            raise ValueError("worker_budget must be >= 1 (or None)")
        if int(study_max_retries) < 0:
            raise ValueError("study_max_retries must be >= 0")
        if float(retry_backoff_s) < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        self.max_concurrent_studies = int(max_concurrent_studies)
        self.worker_budget = None if worker_budget is None else int(worker_budget)
        self.policy = SCHEDULE_POLICY_REGISTRY.get(policy) if isinstance(policy, str) else policy
        self.study_max_retries = int(study_max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        # A shared EvaluationBroker: every socket-backend study scheduled here
        # drains its evaluations through the one worker fleet. Lifecycle stays
        # with the caller (the scheduler never shuts it down).
        self.broker = broker

    @property
    def workers_per_study(self) -> Optional[int]:
        """Fair-share worker allotment per slot (``None`` = scenario's own)."""
        if self.worker_budget is None:
            return None
        return max(1, self.worker_budget // self.max_concurrent_studies)

    # -- execution -------------------------------------------------------------
    def run(
        self,
        submissions: Sequence[StudySubmission],
        on_outcome: Optional[Callable[[StudyOutcome], None]] = None,
    ) -> List[StudyOutcome]:
        """Run every submission; outcomes come back in submission order.

        Failures are *contained*: a study that raises produces a ``"failed"``
        outcome (with the error message) while its siblings keep running —
        nothing short of the scheduler process dying stops the queue.
        ``on_outcome`` fires in the scheduling thread as each study settles
        (the sweep runner uses it to persist manifest progress).
        """
        pending: List[tuple] = [(i, s) for i, s in enumerate(submissions)]
        outcomes: List[Optional[StudyOutcome]] = [None] * len(pending)
        started_per_tenant: Dict[str, int] = {}
        if not pending:
            return []
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_concurrent_studies
        ) as pool:
            running: Dict[concurrent.futures.Future, int] = {}
            while pending or running:
                while pending and len(running) < self.max_concurrent_studies:
                    pick = self.policy([s for _, s in pending], dict(started_per_tenant))
                    if not isinstance(pick, int) or not 0 <= pick < len(pending):
                        raise ValueError(
                            f"schedule policy returned invalid index {pick!r} "
                            f"for a queue of {len(pending)}"
                        )
                    index, submission = pending.pop(pick)
                    started_per_tenant[submission.tenant] = (
                        started_per_tenant.get(submission.tenant, 0) + 1
                    )
                    running[pool.submit(self._run_one, submission)] = index
                done, _ = concurrent.futures.wait(
                    running, return_when=concurrent.futures.FIRST_COMPLETED
                )
                for future in done:
                    index = running.pop(future)
                    outcome = future.result()  # _run_one never raises
                    outcomes[index] = outcome
                    if on_outcome is not None:
                        on_outcome(outcome)
        return [o for o in outcomes if o is not None]

    def drain(
        self,
        claim: Callable[[], Union[StudySubmission, float, None]],
        *,
        settle: Optional[Callable[[StudyOutcome], None]] = None,
        max_studies: Optional[int] = None,
        wait: Callable[[float], None] = time.sleep,
    ) -> List[StudyOutcome]:
        """Pull studies from a claim source until it reports exhaustion.

        The lease-backed claiming mode: instead of a fixed submission list,
        ``claim()`` is consulted whenever a slot is free and returns

        * a :class:`StudySubmission` — run it (crash-isolated, with the
          scheduler's retry policy);
        * a ``float`` — nothing claimable *right now* (e.g. every remaining
          point is leased by a live sibling worker); retry after that many
          seconds;
        * ``None`` — the source is exhausted; finish in-flight studies and
          return.

        ``settle(outcome)`` fires in the scheduling thread as each study
        finishes — the sweep worker uses it to record the result in the
        manifest under its lease's fencing generation *before* the next
        claim.  ``max_studies`` bounds how many claims this call makes.
        Outcomes are returned in completion order (claim order is racy by
        construction — siblings are draining the same source).
        """
        outcomes: List[StudyOutcome] = []
        n_claimed = 0
        exhausted = False
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_concurrent_studies
        ) as pool:
            running: Dict[concurrent.futures.Future, StudySubmission] = {}
            while True:
                delay: Optional[float] = None
                while (
                    not exhausted
                    and len(running) < self.max_concurrent_studies
                    and (max_studies is None or n_claimed < max_studies)
                ):
                    nxt = claim()
                    if nxt is None:
                        exhausted = True
                    elif isinstance(nxt, (int, float)):
                        delay = max(float(nxt), 0.0)
                        break
                    else:
                        n_claimed += 1
                        running[pool.submit(self._run_one, nxt)] = nxt
                if not running:
                    if exhausted or (max_studies is not None and n_claimed >= max_studies):
                        break
                    wait(delay if delay is not None else 0.05)
                    continue
                done, _ = concurrent.futures.wait(
                    running, return_when=concurrent.futures.FIRST_COMPLETED, timeout=delay
                )
                for future in done:
                    running.pop(future)
                    outcome = future.result()  # _run_one never raises
                    outcomes.append(outcome)
                    if settle is not None:
                        settle(outcome)
        return outcomes

    def execute_one(self, submission: StudySubmission) -> StudyOutcome:
        """Run a single submission crash-isolated (never raises)."""
        return self._run_one(submission)

    def serve(self, state_dir: Union[str, Path], **service_kwargs: Any):
        """Open this scheduler as an always-on, multi-tenant live queue.

        Unlike :meth:`run` (closed batch: exits when the submission list
        drains) the returned :class:`~repro.core.service.OptimizationService`
        keeps accepting :class:`StudySubmission`-shaped work while studies
        run — its dispatcher blocks on a condition variable when the queue
        is momentarily empty instead of exiting.  The scheduler's slot
        count, worker budget and admission policy carry over; quotas,
        preemption and crash-safe queue journaling are the service's
        (``state_dir`` holds the journal and one run dir per study).  The
        service is returned *started*; call ``shutdown()`` (or use it as a
        context manager) to park running studies and journal the queue.
        """
        from repro.core.service import OptimizationService

        service = OptimizationService(
            state_dir,
            max_concurrent_studies=self.max_concurrent_studies,
            worker_budget=self.worker_budget,
            policy=self.policy,
            **service_kwargs,
        )
        service.start()
        return service

    # -- one study, crash-isolated ---------------------------------------------
    def _run_one(self, submission: StudySubmission) -> StudyOutcome:
        last_error = "unknown error"
        for attempt in range(self.study_max_retries + 1):
            if attempt > 0:
                delay = self.retry_backoff_s * (2 ** (attempt - 1))
                if delay > 0:
                    time.sleep(delay)
            try:
                # Retries resume from the run directory's checkpoint (when
                # one exists) instead of starting over: only the missing
                # evaluations re-run, and the resumed history is identical
                # to an uninterrupted run.
                return self._execute(submission, retry=attempt > 0)
            except Exception as exc:  # noqa: BLE001 — isolation is the contract
                last_error = f"{type(exc).__name__}: {exc}"
        return StudyOutcome(
            key=submission.key,
            status="failed",
            error=last_error,
            tenant=submission.tenant,
        )

    @staticmethod
    def _result_status(result: StudyResult) -> str:
        return "degraded" if result.is_degraded else "complete"

    def _execute(self, submission: StudySubmission, retry: bool = False) -> StudyOutcome:
        run_dir = None if submission.run_dir is None else Path(submission.run_dir)
        if (submission.resume or retry) and run_dir is not None:
            if run_status(run_dir) in ("complete", "degraded"):
                result = StudyResult.load(run_dir)
                return StudyOutcome(
                    key=submission.key,
                    status=self._result_status(result),
                    result=result,
                    tenant=submission.tenant,
                    reused=True,
                )
            if (run_dir / SCENARIO_FILE).exists():
                result = Study.resume(
                    run_dir,
                    evaluate=submission.evaluate,
                    runner=submission.runner,
                    executor=submission.executor,
                    broker=self.broker,
                )
                return StudyOutcome(
                    key=submission.key,
                    status=self._result_status(result),
                    result=result,
                    tenant=submission.tenant,
                )
        scenario = Scenario.coerce(submission.scenario)
        allotment = self.workers_per_study
        if allotment is not None and submission.executor is None:
            executor_spec = scenario.executor_spec
            if executor_spec["n_workers"] != allotment:
                executor_spec["n_workers"] = allotment
                scenario = scenario.replace(executor=executor_spec)
        study = Study(
            scenario,
            evaluate=submission.evaluate,
            runner=submission.runner,
            executor=submission.executor,
            broker=self.broker,
        )
        result = study.run(run_dir=run_dir)
        return StudyOutcome(
            key=submission.key,
            status=self._result_status(result),
            result=result,
            tenant=submission.tenant,
        )


__all__ = [
    "StudySubmission",
    "StudyOutcome",
    "StudyScheduler",
    "MapOrderedError",
    "map_ordered",
    "fifo_policy",
    "fair_share_policy",
    "preempting_policy",
    "submission_priority",
]
