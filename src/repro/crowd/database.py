"""In-memory results database for the crowd-sourcing experiment.

Stands in for the centralized server the SLAMBench Android app uploads its
results to.  Records are keyed by device name and configuration label.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class CrowdRecord:
    """One uploaded benchmark result."""

    device_name: str
    device_category: str
    config_label: str
    runtime_s: float
    fps: float
    n_frames: int

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON export."""
        return {
            "device_name": self.device_name,
            "device_category": self.device_category,
            "config_label": self.config_label,
            "runtime_s": self.runtime_s,
            "fps": self.fps,
            "n_frames": self.n_frames,
        }


class CrowdDatabase:
    """Collects :class:`CrowdRecord` uploads and answers simple queries."""

    def __init__(self) -> None:
        self._records: List[CrowdRecord] = []

    def upload(self, record: CrowdRecord) -> None:
        """Store one result upload."""
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[CrowdRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[CrowdRecord]:
        """All uploads in arrival order."""
        return list(self._records)

    def devices(self) -> List[str]:
        """Distinct device names that uploaded at least one result."""
        seen: Dict[str, None] = {}
        for r in self._records:
            seen.setdefault(r.device_name, None)
        return list(seen)

    def config_labels(self) -> List[str]:
        """Distinct configuration labels present in the database."""
        seen: Dict[str, None] = {}
        for r in self._records:
            seen.setdefault(r.config_label, None)
        return list(seen)

    def runtime(self, device_name: str, config_label: str) -> Optional[float]:
        """Runtime of a (device, config) pair, or ``None`` if never uploaded."""
        for r in self._records:
            if r.device_name == device_name and r.config_label == config_label:
                return r.runtime_s
        return None

    def speedups(self, baseline_label: str = "default", tuned_label: str = "pareto-best") -> Dict[str, float]:
        """Per-device speedup of ``tuned_label`` over ``baseline_label``."""
        out: Dict[str, float] = {}
        for device in self.devices():
            base = self.runtime(device, baseline_label)
            tuned = self.runtime(device, tuned_label)
            if base is None or tuned is None or tuned <= 0:
                continue
            out[device] = base / tuned
        return out


__all__ = ["CrowdRecord", "CrowdDatabase"]
