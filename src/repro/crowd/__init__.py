"""Crowd-sourcing substrate: the SLAMBench Android app experiment (Fig. 5).

The paper distributes an Android app that runs the default KFusion
configuration and the best-runtime configuration from the ODROID-XU3 Pareto
front on whatever phone/tablet the user owns (100 frames), then uploads both
timings to a central database.  Here the fleet is synthetic
(:mod:`repro.devices.mobile`) and the "app run" evaluates both configurations
through the same workload/runtime model; the analysis reports the speedup
distribution and the cross-device rank correlations that justify the paper's
zero-shot transfer claim.
"""

from repro.crowd.app import CrowdAppRun, run_crowd_experiment, tuned_config_from_run
from repro.crowd.database import CrowdDatabase
from repro.crowd.analysis import speedup_statistics, cross_device_correlation

__all__ = [
    "CrowdAppRun",
    "run_crowd_experiment",
    "tuned_config_from_run",
    "CrowdDatabase",
    "speedup_statistics",
    "cross_device_correlation",
]
