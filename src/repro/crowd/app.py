"""The simulated SLAMBench Android app run.

Each "installation" runs the default KFusion configuration and the tuned
(Pareto-best-runtime) configuration for 100 frames on its device and uploads
both timings to the :class:`~repro.crowd.database.CrowdDatabase`.

Like the search engine's :class:`~repro.core.executor.EvaluationExecutor`,
the fleet fan-out is batched and optionally concurrent (``n_workers``),
running through the scheduler's deterministic fan-out primitive
(:func:`~repro.core.scheduler.map_ordered`): devices run independently and
their uploads land in a deterministic order regardless of which device
finishes first — exactly the property the real crowd experiment relies on
when 83 phones report back asynchronously.  ``map_ordered`` drains every
device before reporting failures (one crashed phone does not discard the
other 82 results); a raised :class:`~repro.core.scheduler.MapOrderedError`
aggregates all per-device errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.scheduler import map_ordered
from repro.crowd.database import CrowdDatabase, CrowdRecord
from repro.devices.model import DeviceModel
from repro.slambench.runner import SlamBenchRunner, SlamRunRecord


@dataclass
class CrowdAppRun:
    """Result of one device running the app (both configurations)."""

    device: DeviceModel
    default_runtime_s: float
    tuned_runtime_s: float
    n_frames: int

    @property
    def speedup(self) -> float:
        """Speedup of the tuned configuration over the default on this device."""
        return self.default_runtime_s / self.tuned_runtime_s if self.tuned_runtime_s > 0 else float("inf")


def _device_app_run(
    device: DeviceModel,
    default_record: SlamRunRecord,
    tuned_record: SlamRunRecord,
    extra_records: Mapping[str, SlamRunRecord],
) -> Tuple[Dict[str, float], Dict[str, float], Dict[str, Dict[str, float]]]:
    """One installation's benchmark: all configurations on one device."""
    return (
        default_record.metrics_for(device),
        tuned_record.metrics_for(device),
        {label: record.metrics_for(device) for label, record in extra_records.items()},
    )


def run_crowd_experiment(
    runner: SlamBenchRunner,
    devices: Sequence[DeviceModel],
    default_config: Mapping[str, object],
    tuned_config: Mapping[str, object],
    n_frames: int = 100,
    database: Optional[CrowdDatabase] = None,
    extra_configs: Optional[Mapping[str, Mapping[str, object]]] = None,
    n_workers: int = 1,
) -> List[CrowdAppRun]:
    """Run the app on every device of the fleet and populate the database.

    The pipeline simulation (accuracy / per-frame work) is shared across
    devices; only the device runtime model differs, exactly as in the real
    experiment where every phone runs the same two configurations.

    Parameters
    ----------
    runner:
        A KFusion :class:`~repro.slambench.runner.SlamBenchRunner`.
    devices:
        The fleet (83 devices in the paper).
    default_config, tuned_config:
        The two configurations every device benchmarks.
    n_frames:
        Frames per app run (the app runs 100 "for practical reasons").
    database:
        Optional database to upload results into.
    extra_configs:
        Additional labelled configurations to benchmark on every device.
    n_workers:
        Devices running concurrently.  Results and uploads always come back
        in fleet order, so the database content is identical to a serial run.
    """
    default_record = runner.run_config(default_config)
    tuned_record = runner.run_config(tuned_config)
    extra_records = {label: runner.run_config(cfg) for label, cfg in (extra_configs or {}).items()}
    if database is None:
        # Extra-config metrics are only ever read by the upload branch.
        extra_records = {}

    per_device = map_ordered(
        lambda d: _device_app_run(d, default_record, tuned_record, extra_records),
        devices,
        max_concurrent=n_workers,
    )

    runs: List[CrowdAppRun] = []
    for device, (default_metrics, tuned_metrics, extra_metrics) in zip(devices, per_device):
        run = CrowdAppRun(
            device=device,
            default_runtime_s=default_metrics["runtime_s"],
            tuned_runtime_s=tuned_metrics["runtime_s"],
            n_frames=n_frames,
        )
        runs.append(run)
        if database is not None:
            database.upload(
                CrowdRecord(
                    device_name=device.name,
                    device_category=device.category,
                    config_label="default",
                    runtime_s=default_metrics["runtime_s"],
                    fps=default_metrics["fps"],
                    n_frames=n_frames,
                )
            )
            database.upload(
                CrowdRecord(
                    device_name=device.name,
                    device_category=device.category,
                    config_label="pareto-best",
                    runtime_s=tuned_metrics["runtime_s"],
                    fps=tuned_metrics["fps"],
                    n_frames=n_frames,
                )
            )
            for label, metrics in extra_metrics.items():
                database.upload(
                    CrowdRecord(
                        device_name=device.name,
                        device_category=device.category,
                        config_label=label,
                        runtime_s=metrics["runtime_s"],
                        fps=metrics["fps"],
                        n_frames=n_frames,
                    )
                )
    return runs


def tuned_config_from_run(
    run_dir: Union[str, Path], objective: str = "runtime_s"
) -> Dict[str, object]:
    """The crowd app's tuned configuration, read from a persisted study run.

    The fleet consumes the versioned run-directory artifact a Fig. 3 study
    writes (``python -m repro run`` / :meth:`repro.core.study.Study.run`)
    instead of a hand-wired optimizer result: the Pareto record optimizing
    ``objective`` (per-frame runtime by default) becomes the configuration
    every device benchmarks against the default.
    """
    from repro.core.study import StudyResult

    result = StudyResult.load(run_dir)
    best = result.best_by(objective)
    if best is None:
        raise RuntimeError(
            f"study run {run_dir!s} has no feasible Pareto point to deploy to the fleet"
        )
    return dict(best.config)


__all__ = ["CrowdAppRun", "run_crowd_experiment", "tuned_config_from_run"]
