"""The simulated SLAMBench Android app run.

Each "installation" runs the default KFusion configuration and the tuned
(Pareto-best-runtime) configuration for 100 frames on its device and uploads
both timings to the :class:`~repro.crowd.database.CrowdDatabase`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.crowd.database import CrowdDatabase, CrowdRecord
from repro.devices.model import DeviceModel
from repro.slambench.runner import SlamBenchRunner


@dataclass
class CrowdAppRun:
    """Result of one device running the app (both configurations)."""

    device: DeviceModel
    default_runtime_s: float
    tuned_runtime_s: float
    n_frames: int

    @property
    def speedup(self) -> float:
        """Speedup of the tuned configuration over the default on this device."""
        return self.default_runtime_s / self.tuned_runtime_s if self.tuned_runtime_s > 0 else float("inf")


def run_crowd_experiment(
    runner: SlamBenchRunner,
    devices: Sequence[DeviceModel],
    default_config: Mapping[str, object],
    tuned_config: Mapping[str, object],
    n_frames: int = 100,
    database: Optional[CrowdDatabase] = None,
    extra_configs: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> List[CrowdAppRun]:
    """Run the app on every device of the fleet and populate the database.

    The pipeline simulation (accuracy / per-frame work) is shared across
    devices; only the device runtime model differs, exactly as in the real
    experiment where every phone runs the same two configurations.

    Parameters
    ----------
    runner:
        A KFusion :class:`~repro.slambench.runner.SlamBenchRunner`.
    devices:
        The fleet (83 devices in the paper).
    default_config, tuned_config:
        The two configurations every device benchmarks.
    n_frames:
        Frames per app run (the app runs 100 "for practical reasons").
    database:
        Optional database to upload results into.
    extra_configs:
        Additional labelled configurations to benchmark on every device.
    """
    default_record = runner.run_config(default_config)
    tuned_record = runner.run_config(tuned_config)
    extra_records = {label: runner.run_config(cfg) for label, cfg in (extra_configs or {}).items()}

    runs: List[CrowdAppRun] = []
    for device in devices:
        default_metrics = default_record.metrics_for(device)
        tuned_metrics = tuned_record.metrics_for(device)
        run = CrowdAppRun(
            device=device,
            default_runtime_s=default_metrics["runtime_s"],
            tuned_runtime_s=tuned_metrics["runtime_s"],
            n_frames=n_frames,
        )
        runs.append(run)
        if database is not None:
            database.upload(
                CrowdRecord(
                    device_name=device.name,
                    device_category=device.category,
                    config_label="default",
                    runtime_s=default_metrics["runtime_s"],
                    fps=default_metrics["fps"],
                    n_frames=n_frames,
                )
            )
            database.upload(
                CrowdRecord(
                    device_name=device.name,
                    device_category=device.category,
                    config_label="pareto-best",
                    runtime_s=tuned_metrics["runtime_s"],
                    fps=tuned_metrics["fps"],
                    n_frames=n_frames,
                )
            )
            for label, record in extra_records.items():
                metrics = record.metrics_for(device)
                database.upload(
                    CrowdRecord(
                        device_name=device.name,
                        device_category=device.category,
                        config_label=label,
                        runtime_s=metrics["runtime_s"],
                        fps=metrics["fps"],
                        n_frames=n_frames,
                    )
                )
    return runs


__all__ = ["CrowdAppRun", "run_crowd_experiment"]
