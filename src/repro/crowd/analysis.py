"""Analysis of the crowd-sourced results: speedups and zero-shot transfer.

The paper reports speedups between 2x and more than 12x across 83 devices and
cites the strong Pearson/Spearman correlation between per-configuration
runtimes on different machines as the reason why a Pareto front learned on one
device transfers to similar devices.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.crowd.app import CrowdAppRun
from repro.devices.model import DeviceModel
from repro.slambench.runner import SlamBenchRunner


def speedup_statistics(runs: Sequence[CrowdAppRun]) -> Dict[str, float]:
    """Summary statistics of the per-device speedups (the Fig. 5 distribution)."""
    if len(runs) == 0:
        raise ValueError("no crowd runs to analyse")
    speedups = np.array([r.speedup for r in runs], dtype=np.float64)
    return {
        "n_devices": float(len(runs)),
        "min": float(speedups.min()),
        "max": float(speedups.max()),
        "mean": float(speedups.mean()),
        "median": float(np.median(speedups)),
        "p10": float(np.percentile(speedups, 10)),
        "p90": float(np.percentile(speedups, 90)),
        "fraction_at_least_2x": float(np.mean(speedups >= 2.0)),
    }


def speedup_histogram(runs: Sequence[CrowdAppRun], bin_edges: Sequence[float] = (0, 2, 4, 6, 8, 10, 12, 100)) -> List[Tuple[str, int]]:
    """Histogram of speedups using Fig. 5's axis binning."""
    speedups = np.array([r.speedup for r in runs], dtype=np.float64)
    counts, _ = np.histogram(speedups, bins=np.asarray(bin_edges, dtype=np.float64))
    labels = []
    for lo, hi in zip(bin_edges[:-1], bin_edges[1:]):
        labels.append(f"{lo:g}-{hi:g}x" if hi < 100 else f">{lo:g}x")
    return list(zip(labels, counts.tolist()))


def cross_device_correlation(
    runner: SlamBenchRunner,
    configs: Sequence[Mapping[str, object]],
    device_a: DeviceModel,
    device_b: DeviceModel,
) -> Dict[str, float]:
    """Pearson and Spearman correlation of per-configuration runtimes on two devices.

    A high rank correlation is the zero-shot transfer argument of the paper
    (citing Roy et al.): configurations that are fast on one machine tend to be
    fast on another similar machine.
    """
    if len(configs) < 3:
        raise ValueError("need at least three configurations to correlate")
    runtimes_a = []
    runtimes_b = []
    for config in configs:
        record = runner.run_config(config)
        runtimes_a.append(record.metrics_for(device_a)["runtime_s"])
        runtimes_b.append(record.metrics_for(device_b)["runtime_s"])
    a = np.asarray(runtimes_a)
    b = np.asarray(runtimes_b)
    pearson = float(scipy_stats.pearsonr(a, b)[0])
    spearman = float(scipy_stats.spearmanr(a, b)[0])
    return {"pearson": pearson, "spearman": spearman, "n_configs": float(len(configs))}


__all__ = ["speedup_statistics", "speedup_histogram", "cross_device_correlation"]
