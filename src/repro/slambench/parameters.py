"""Design spaces, default configurations and objectives of the two applications.

The KFusion space matches Section III-B of the paper (roughly 1.8 million
configurations); the ElasticFusion space matches Section III-C (roughly
450,000 configurations: three numeric parameters plus five boolean flags).
Default values are the ones shipped with the applications, i.e. the expert
hand-tuned baselines HyperMapper is compared against.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.objectives import Objective, ObjectiveSet
from repro.core.parameters import BooleanParameter, OrdinalParameter
from repro.core.space import Configuration, DesignSpace

#: The paper's validity limit on the (maximum) absolute trajectory error.
ACCURACY_LIMIT_M = 0.05


# ---------------------------------------------------------------------------
# KinectFusion
# ---------------------------------------------------------------------------

def kfusion_design_space() -> DesignSpace:
    """The KFusion algorithmic design space (about 1.8 M configurations).

    Parameters (defaults in parentheses) follow Section III-B:

    * ``volume_resolution`` (256) — voxels per axis of the TSDF grid,
    * ``mu`` (0.1 m) — TSDF truncation distance,
    * ``pyramid_iterations_0/1/2`` (10/5/4) — ICP iterations per pyramid level,
    * ``compute_size_ratio`` (1) — input image down-scaling factor,
    * ``tracking_rate`` (1) — localize every N-th frame,
    * ``icp_threshold`` (1e-5) — ICP early-termination threshold,
    * ``integration_rate`` (2) — integrate every N-th frame.
    """
    return DesignSpace(
        [
            OrdinalParameter("volume_resolution", [64, 128, 256], default=256),
            OrdinalParameter(
                "mu",
                [0.025, 0.05, 0.075, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5],
                default=0.1,
            ),
            OrdinalParameter("pyramid_iterations_0", [2, 4, 6, 8, 10], default=10),
            OrdinalParameter("pyramid_iterations_1", [0, 1, 2, 3, 5], default=5),
            OrdinalParameter("pyramid_iterations_2", [0, 1, 2, 4], default=4),
            OrdinalParameter("compute_size_ratio", [1, 2, 4, 8], default=1),
            OrdinalParameter("tracking_rate", [1, 2, 3, 4, 5], default=1),
            OrdinalParameter(
                "icp_threshold", [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1], default=1e-5
            ),
            OrdinalParameter("integration_rate", [1, 2, 3, 4, 5], default=2),
        ],
        name="kfusion",
    )


def kfusion_default_config() -> Configuration:
    """The expert/default KFusion configuration (SLAMBench defaults)."""
    return kfusion_design_space().default_configuration()


def kfusion_objectives(accuracy_limit_m: float = ACCURACY_LIMIT_M) -> ObjectiveSet:
    """KFusion objectives: maximum ATE (with validity limit) and frame runtime."""
    return ObjectiveSet(
        [
            Objective("max_ate_m", minimize=True, unit="m", limit=accuracy_limit_m),
            Objective("runtime_s", minimize=True, unit="s/frame"),
        ]
    )


# ---------------------------------------------------------------------------
# ElasticFusion
# ---------------------------------------------------------------------------

def elasticfusion_design_space() -> DesignSpace:
    """The ElasticFusion algorithmic design space (about 450 K configurations).

    Numeric parameters (defaults in parentheses): ``icp_rgb_weight`` (10),
    ``depth_cutoff`` (3 m), ``confidence_threshold`` (10).  Boolean flags:
    ``so3_prealignment`` (on), ``open_loop`` (off), ``relocalisation`` (on),
    ``fast_odometry`` (off), ``frame_to_frame_rgb`` (off).

    Note the sign convention: the paper's flag is "disable SO3 pre-alignment";
    we expose the positive form ``so3_prealignment`` whose default (True)
    matches the paper's default column (SO3 = 1).
    """
    weight_values = [round(x, 1) for x in np.arange(0.5, 12.01, 0.5)]
    depth_values = [round(x, 1) for x in np.arange(1.0, 10.01, 0.5)]
    confidence_values = [round(x, 1) for x in np.arange(1.0, 15.01, 0.5)]
    return DesignSpace(
        [
            OrdinalParameter("icp_rgb_weight", weight_values, default=10.0),
            OrdinalParameter("depth_cutoff", depth_values, default=3.0),
            OrdinalParameter("confidence_threshold", confidence_values, default=10.0),
            BooleanParameter("so3_prealignment", default=True),
            BooleanParameter("open_loop", default=False),
            BooleanParameter("relocalisation", default=True),
            BooleanParameter("fast_odometry", default=False),
            BooleanParameter("frame_to_frame_rgb", default=False),
        ],
        name="elasticfusion",
    )


def elasticfusion_default_config() -> Configuration:
    """The ElasticFusion developers' default configuration (Table I, row 1)."""
    return elasticfusion_design_space().default_configuration()


def elasticfusion_objectives(accuracy_limit_m: float = ACCURACY_LIMIT_M) -> ObjectiveSet:
    """ElasticFusion objectives: mean ATE and frame runtime."""
    return ObjectiveSet(
        [
            Objective("mean_ate_m", minimize=True, unit="m", limit=accuracy_limit_m),
            Objective("runtime_s", minimize=True, unit="s/frame"),
        ]
    )


def table1_flag_columns(config: Dict[str, object]) -> Dict[str, int]:
    """Map a configuration onto the column convention used by Table I.

    The paper's table reports SO3 = 1 when pre-alignment is enabled,
    Close-Loops = the open-loop flag value, and the remaining flags directly.
    """
    return {
        "SO3": int(bool(config["so3_prealignment"])),
        "Close-Loops": int(bool(config["open_loop"])),
        "Reloc": int(bool(config["relocalisation"])),
        "Fast-Odom": int(bool(config["fast_odometry"])),
        "FTF RGB": int(bool(config["frame_to_frame_rgb"])),
    }


__all__ = [
    "ACCURACY_LIMIT_M",
    "kfusion_design_space",
    "kfusion_default_config",
    "kfusion_objectives",
    "elasticfusion_design_space",
    "elasticfusion_default_config",
    "elasticfusion_objectives",
    "table1_flag_columns",
]
