"""Per-kernel workload model: algorithmic parameters -> FLOPs and bytes.

The runtime objective of the design-space exploration is estimated from the
work each GPU kernel performs at the *nominal* sensor resolution (640x480).
Work quantities are functions of the algorithmic parameters and of the logical
per-frame counters recorded by the pipelines (ICP iterations actually
executed, voxels integrated, surfels active, ...), so the runtime responds to
both the static configuration and the dynamic behaviour it induces.

The per-pixel / per-voxel constants below are rough operation counts of the
corresponding SLAMBench OpenCL kernels and ElasticFusion CUDA kernels; the
absolute scale is anchored so that the default configurations reproduce the
operating points the paper reports (about 6 FPS for KFusion on the
ODROID-XU3 and about 45 FPS for ElasticFusion on the GTX 780 Ti).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

import numpy as np

from repro.devices.model import DeviceModel, KernelCost
from repro.slam.pipeline import FrameStats

NOMINAL_WIDTH = 640
NOMINAL_HEIGHT = 480
NOMINAL_PIXELS = NOMINAL_WIDTH * NOMINAL_HEIGHT

# ElasticFusion's global-model bookkeeping (index-map building, deformation
# graph, fern encoding) is heavier per element than the raw arithmetic
# suggests; this factor anchors the default configuration at the paper's
# reported ~45 FPS on the GTX 780 Ti.
_EF_MODEL_SCALE = 350.0


def _pyramid_pixel_counts(n_pixels: int, levels: int = 3) -> List[int]:
    return [max(n_pixels // (4**level), 1) for level in range(levels)]


def kfusion_frame_kernels(stats: FrameStats, config: Mapping[str, object]) -> List[KernelCost]:
    """Kernel work of one KFusion frame under ``config``.

    ``stats`` provides the dynamic counters (whether the frame was tracked /
    integrated and how many ICP iterations actually ran); ``config`` provides
    the static parameters (compute-size ratio, volume resolution, pyramid
    iteration schedule).
    """
    csr = int(config["compute_size_ratio"])
    resolution = int(config["volume_resolution"])
    n_pixels = (NOMINAL_WIDTH // csr) * (NOMINAL_HEIGHT // csr)
    level_pixels = _pyramid_pixel_counts(n_pixels)
    kernels: List[KernelCost] = [
        KernelCost("mm2meters", flops=2.0 * NOMINAL_PIXELS, bytes=6.0 * NOMINAL_PIXELS),
        KernelCost("bilateral_filter", flops=200.0 * n_pixels, bytes=8.0 * n_pixels),
        KernelCost("half_sample", flops=8.0 * sum(level_pixels[1:]), bytes=5.0 * sum(level_pixels[1:]), launches=2),
        KernelCost("depth2vertex", flops=9.0 * sum(level_pixels), bytes=16.0 * sum(level_pixels), launches=3),
        KernelCost("vertex2normal", flops=20.0 * sum(level_pixels), bytes=24.0 * sum(level_pixels), launches=3),
    ]

    if stats.tracked:
        # Distribute the executed iterations across pyramid levels in
        # proportion to the configured schedule.
        schedule = np.array(
            [
                float(config.get("pyramid_iterations_0", 10)),
                float(config.get("pyramid_iterations_1", 5)),
                float(config.get("pyramid_iterations_2", 4)),
            ]
        )
        total_conf = schedule.sum()
        if total_conf <= 0:
            schedule = np.array([1.0, 0.0, 0.0])
            total_conf = 1.0
        executed = stats.icp_iterations * schedule / total_conf
        track_flops = 0.0
        track_bytes = 0.0
        reduce_flops = 0.0
        reduce_bytes = 0.0
        launches = 0
        for level, iters in enumerate(executed):
            pix = level_pixels[min(level, len(level_pixels) - 1)]
            track_flops += 55.0 * pix * iters
            track_bytes += 48.0 * pix * iters
            reduce_flops += 22.0 * pix * iters
            reduce_bytes += 4.0 * pix * iters
            launches += int(np.ceil(iters)) * 2
        kernels.append(KernelCost("track", flops=track_flops, bytes=track_bytes, launches=max(launches // 2, 1)))
        kernels.append(KernelCost("reduce", flops=reduce_flops, bytes=reduce_bytes, launches=max(launches // 2, 1)))
        kernels.append(KernelCost("solve", flops=1.2e4 * max(stats.icp_iterations, 1), bytes=4096.0, launches=1))

    if stats.integrated:
        n_voxels = float(resolution) ** 3
        kernels.append(KernelCost("integrate", flops=14.0 * n_voxels, bytes=8.0 * n_voxels))
        # Raycasting the updated model for the next tracking step: rays march
        # roughly half the volume edge in voxel-sized steps.
        steps = n_pixels * resolution * 0.5
        kernels.append(KernelCost("raycast", flops=12.0 * steps, bytes=4.0 * steps))

    return kernels


def elasticfusion_frame_kernels(stats: FrameStats, config: Mapping[str, object]) -> List[KernelCost]:
    """Kernel work of one ElasticFusion frame under ``config``."""
    n_pixels = NOMINAL_PIXELS
    # Fraction of pixels surviving the depth cut-off (recorded by the pipeline
    # at simulation scale and already expressed at nominal scale).
    valid_pixels = max(float(stats.n_tracking_points), 1.0)
    level_pixels = _pyramid_pixel_counts(int(valid_pixels))
    n_surfels = max(float(stats.n_surfels), 1.0)
    active_surfels = max(float(stats.raycast_steps), 1.0)  # active surfels splatted for the model view

    kernels: List[KernelCost] = [
        KernelCost("preprocess", flops=400.0 * n_pixels, bytes=60.0 * n_pixels, launches=6),
        KernelCost("pyramid", flops=10.0 * sum(level_pixels), bytes=8.0 * sum(level_pixels), launches=3),
    ]

    if stats.so3_used:
        so3_iters = float(stats.extra.get("so3_iterations", 3.0))
        coarse = level_pixels[-1]
        kernels.append(KernelCost("so3_prealign", flops=360.0 * coarse * max(so3_iters, 1.0), bytes=130.0 * coarse * max(so3_iters, 1.0), launches=int(max(so3_iters, 1.0)) * 2))

    if stats.tracked:
        icp_iters = max(stats.icp_iterations, 1)
        rgb_iters = max(stats.rgb_iterations, 0)
        mean_level_pix = float(np.mean(level_pixels))
        kernels.append(
            KernelCost(
                "icp_step",
                flops=560.0 * mean_level_pix * icp_iters,
                bytes=450.0 * mean_level_pix * icp_iters,
                launches=icp_iters * 4,
            )
        )
        if rgb_iters > 0:
            kernels.append(
                KernelCost(
                    "rgb_step",
                    flops=400.0 * mean_level_pix * rgb_iters,
                    bytes=190.0 * mean_level_pix * rgb_iters,
                    launches=rgb_iters * 4,
                )
            )
        kernels.append(KernelCost("solve", flops=1.5e4 * (icp_iters + rgb_iters), bytes=8192.0, launches=2))

    # Model prediction (index map + splat) over the active surfels, plus the
    # global-model maintenance (fusion, cleaning, deformation bookkeeping).
    kernels.append(
        KernelCost(
            "model_predict",
            flops=_EF_MODEL_SCALE * 12.0 * active_surfels + 8.0 * n_pixels,
            bytes=_EF_MODEL_SCALE * 24.0 * active_surfels + 8.0 * n_pixels,
            launches=3,
        )
    )
    if stats.integrated:
        fused = max(float(stats.integration_elements), 1.0)
        kernels.append(
            KernelCost(
                "surfel_fusion",
                flops=_EF_MODEL_SCALE * 18.0 * fused,
                bytes=_EF_MODEL_SCALE * 30.0 * fused,
                launches=4,
            )
        )
    if not bool(config.get("open_loop", False)):
        kernels.append(
            KernelCost(
                "local_loop_closure",
                flops=_EF_MODEL_SCALE * 6.0 * n_surfels,
                bytes=_EF_MODEL_SCALE * 10.0 * n_surfels,
                launches=5,
            )
        )
    if stats.relocalised:
        kernels.append(KernelCost("relocalisation", flops=80.0 * n_pixels, bytes=32.0 * n_pixels, launches=6))

    return kernels


def frame_runtime(
    stats: FrameStats,
    config: Mapping[str, object],
    device: DeviceModel,
    pipeline: str,
) -> float:
    """Estimated runtime (seconds) of one frame of ``pipeline`` on ``device``."""
    if pipeline == "kfusion":
        kernels = kfusion_frame_kernels(stats, config)
    elif pipeline == "elasticfusion":
        kernels = elasticfusion_frame_kernels(stats, config)
    else:
        raise ValueError(f"unknown pipeline {pipeline!r}")
    return device.frame_time_s(kernels)


def sequence_runtime(
    frames: Sequence[FrameStats],
    config: Mapping[str, object],
    device: DeviceModel,
    pipeline: str,
) -> Dict[str, float]:
    """Mean/total runtime statistics of a frame sequence on ``device``.

    Returns a dictionary with ``runtime_s`` (mean seconds per frame — the
    runtime objective of the paper), ``fps``, ``total_s`` and ``max_frame_s``.
    """
    if len(frames) == 0:
        raise ValueError("cannot compute runtime of an empty sequence")
    times = np.array([frame_runtime(f, config, device, pipeline) for f in frames])
    mean_t = float(times.mean())
    return {
        "runtime_s": mean_t,
        "fps": 1.0 / mean_t if mean_t > 0 else float("inf"),
        "total_s": float(times.sum()),
        "max_frame_s": float(times.max()),
    }


__all__ = [
    "NOMINAL_WIDTH",
    "NOMINAL_HEIGHT",
    "NOMINAL_PIXELS",
    "kfusion_frame_kernels",
    "elasticfusion_frame_kernels",
    "frame_runtime",
    "sequence_runtime",
]
