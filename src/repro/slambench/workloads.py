"""Named SLAM workloads and the declarative ``slambench`` evaluator plugin.

A *workload* bundles everything a scenario needs to study one application by
name: the design space, the objectives, the expert default configuration and
a runner factory.  The two paper applications are registered as
``"kfusion"`` and ``"elasticfusion"``; third-party applications register
their own with :func:`~repro.core.registry.register_workload`.

The ``slambench`` evaluator type turns a scenario section like ::

    {"type": "slambench", "workload": "kfusion", "device": "odroid-xu3",
     "n_frames": 30, "width": 64, "height": 48, "dataset_seed": 1}

into a bound black box (accuracy from the pipeline simulation, runtime from
the named device's cost model), supplying the workload's space/objectives to
scenarios that do not declare their own.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.core.objectives import ObjectiveSet
from repro.core.registry import (
    DEVICE_REGISTRY,
    WORKLOAD_REGISTRY,
    EvaluatorBinding,
    UnknownPluginError,
    register_evaluator,
    register_workload,
)
from repro.core.space import Configuration, DesignSpace
from repro.slambench.parameters import (
    ACCURACY_LIMIT_M,
    elasticfusion_default_config,
    elasticfusion_design_space,
    elasticfusion_objectives,
    kfusion_default_config,
    kfusion_design_space,
    kfusion_objectives,
)
from repro.slambench.runner import SlamBenchRunner


class SlamWorkload:
    """A named SLAM application: space + objectives + defaults + runner."""

    #: Registered name; set by subclasses.
    name: str = ""
    #: The pipeline key understood by :class:`SlamBenchRunner`.
    pipeline: str = ""

    def space(self) -> DesignSpace:
        """The application's algorithmic design space."""
        raise NotImplementedError

    def objectives(self, accuracy_limit_m: float = ACCURACY_LIMIT_M) -> ObjectiveSet:
        """The application's objectives (accuracy limit adjustable)."""
        raise NotImplementedError

    def default_config(self) -> Configuration:
        """The expert/shipped default configuration."""
        raise NotImplementedError

    def make_runner(
        self,
        n_frames: int = 60,
        width: int = 80,
        height: int = 60,
        dataset_seed: int = 0,
        pipeline_seed: int = 0,
        pipeline_options: Optional[Mapping[str, object]] = None,
    ) -> SlamBenchRunner:
        """A :class:`SlamBenchRunner` for this workload at the given scale."""
        kwargs: Dict[str, object] = {}
        options = dict(self.default_pipeline_options())
        options.update(pipeline_options or {})
        if self.pipeline == "elasticfusion":
            if options:
                kwargs["elasticfusion_kwargs"] = options
        elif pipeline_options:
            # Refuse rather than silently run with defaults: this pipeline
            # has no option plumbing, so the user's settings would be lost.
            raise ValueError(
                f"workload {self.name!r} does not accept pipeline_options "
                f"(got {sorted(pipeline_options)})"
            )
        return SlamBenchRunner(
            self.pipeline,
            n_frames=n_frames,
            width=width,
            height=height,
            dataset_seed=dataset_seed,
            pipeline_seed=pipeline_seed,
            **kwargs,
        )

    def default_pipeline_options(self) -> Dict[str, object]:
        """Pipeline options applied unless a scenario overrides them."""
        return {}

    @property
    def accepts_pipeline_options(self) -> bool:
        """Whether :meth:`make_runner` can forward ``pipeline_options``."""
        return self.pipeline == "elasticfusion"


@register_workload("kfusion")
class KFusionWorkload(SlamWorkload):
    """KinectFusion (Section III-B: ~1.8 M configurations)."""

    name = "kfusion"
    pipeline = "kfusion"

    def space(self) -> DesignSpace:
        return kfusion_design_space()

    def objectives(self, accuracy_limit_m: float = ACCURACY_LIMIT_M) -> ObjectiveSet:
        return kfusion_objectives(accuracy_limit_m)

    def default_config(self) -> Configuration:
        return kfusion_default_config()


@register_workload("elasticfusion")
class ElasticFusionWorkload(SlamWorkload):
    """ElasticFusion (Section III-C: ~450 K configurations)."""

    name = "elasticfusion"
    pipeline = "elasticfusion"

    def space(self) -> DesignSpace:
        return elasticfusion_design_space()

    def objectives(self, accuracy_limit_m: float = ACCURACY_LIMIT_M) -> ObjectiveSet:
        return elasticfusion_objectives(accuracy_limit_m)

    def default_config(self) -> Configuration:
        return elasticfusion_default_config()

    def default_pipeline_options(self) -> Dict[str, object]:
        # Fusion stride 2 keeps a single evaluation affordable at DSE scale
        # without changing the trends (same default the experiments use).
        return {"fusion_stride": 2}


def get_workload(name: str) -> SlamWorkload:
    """Resolve a registered workload by name and instantiate it."""
    cls = WORKLOAD_REGISTRY.get(name)
    return cls() if isinstance(cls, type) else cls


# ---------------------------------------------------------------------------
# The "slambench" evaluator plugin
# ---------------------------------------------------------------------------

_SLAMBENCH_KEYS = (
    "type",
    "workload",
    "device",
    "n_frames",
    "width",
    "height",
    "dataset_seed",
    "pipeline_seed",
    "accuracy_limit_m",
    "pipeline_options",
)


def _validate_slambench_spec(spec: Mapping[str, Any], path: str) -> None:
    """Scenario-time validation with JSON-pointer paths (see core.scenario)."""
    from repro.core.scenario import ScenarioError

    unknown = [k for k in spec if k not in _SLAMBENCH_KEYS]
    if unknown:
        raise ScenarioError(f"{path}/{unknown[0]}", "unknown key in slambench evaluator")
    for key in ("workload", "device"):
        if key not in spec:
            raise ScenarioError(f"{path}/{key}", "missing required key")
    try:
        WORKLOAD_REGISTRY.get(spec["workload"])
    except UnknownPluginError as exc:
        raise ScenarioError(f"{path}/workload", str(exc)) from None
    try:
        DEVICE_REGISTRY.get(str(spec["device"]).strip().lower())
    except UnknownPluginError as exc:
        raise ScenarioError(f"{path}/device", str(exc)) from None
    for key in ("n_frames", "width", "height", "dataset_seed", "pipeline_seed"):
        if key in spec and (not isinstance(spec[key], int) or isinstance(spec[key], bool)):
            raise ScenarioError(
                f"{path}/{key}", f"expected an integer, got {type(spec[key]).__name__}"
            )
    if "accuracy_limit_m" in spec and not isinstance(spec["accuracy_limit_m"], (int, float)):
        raise ScenarioError(
            f"{path}/accuracy_limit_m",
            f"expected a number, got {type(spec['accuracy_limit_m']).__name__}",
        )
    if "pipeline_options" in spec:
        if not isinstance(spec["pipeline_options"], Mapping):
            raise ScenarioError(
                f"{path}/pipeline_options",
                f"expected an object, got {type(spec['pipeline_options']).__name__}",
            )
        if spec["pipeline_options"] and not get_workload(spec["workload"]).accepts_pipeline_options:
            raise ScenarioError(
                f"{path}/pipeline_options",
                f"workload {spec['workload']!r} does not accept pipeline options",
            )


@register_evaluator("slambench")
def make_slambench_evaluator(
    spec: Mapping[str, Any], *, runner: Optional[SlamBenchRunner] = None, **_: Any
) -> EvaluatorBinding:
    """Bind a workload + device into a ``config -> metrics`` black box.

    ``runner`` injects a pre-built :class:`SlamBenchRunner` so several studies
    (e.g. the same workload on two devices) share one simulation cache; the
    spec's scale knobs are then ignored in favour of the injected runner.
    """
    workload = get_workload(spec["workload"])
    device = DEVICE_REGISTRY.get(str(spec["device"]).strip().lower())
    if runner is None:
        runner = workload.make_runner(
            n_frames=int(spec.get("n_frames", 60)),
            width=int(spec.get("width", 80)),
            height=int(spec.get("height", 60)),
            dataset_seed=int(spec.get("dataset_seed", 0)),
            pipeline_seed=int(spec.get("pipeline_seed", 0)),
            pipeline_options=spec.get("pipeline_options"),
        )
    accuracy_limit = float(spec.get("accuracy_limit_m", ACCURACY_LIMIT_M))
    return EvaluatorBinding(
        fn=runner.evaluation_function(device),
        space=workload.space(),
        objectives=workload.objectives(accuracy_limit),
        default_config=workload.default_config(),
        info={
            "type": "slambench",
            "workload": workload.name,
            "device": device.name,
            "runner": runner,
        },
    )


def _resolve_slambench_problem(spec: Mapping[str, Any]):
    """Cheap ``(space, objectives)`` resolution — no runner/dataset built.

    Used when reloading persisted run directories, where only the problem
    definition (not the black box) is needed.
    """
    workload = get_workload(spec["workload"])
    limit = float(spec.get("accuracy_limit_m", ACCURACY_LIMIT_M))
    return workload.space(), workload.objectives(limit)


make_slambench_evaluator.validate_spec = _validate_slambench_spec
make_slambench_evaluator.provides_problem = True
make_slambench_evaluator.resolve_problem = _resolve_slambench_problem


__all__ = [
    "SlamWorkload",
    "KFusionWorkload",
    "ElasticFusionWorkload",
    "get_workload",
    "make_slambench_evaluator",
]
