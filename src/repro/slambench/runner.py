"""SLAMBench-style runner: evaluate a configuration -> (accuracy, runtime).

The runner owns a synthetic dataset, runs the requested pipeline on it for a
given algorithmic configuration and combines the trajectory-error metric with
the device runtime model.  Pipeline runs are cached by configuration so that
evaluating the same configuration on several devices (e.g. ODROID-XU3 and
ASUS T200TA in Fig. 3, or the 83 crowd-sourced devices in Fig. 5) only costs
one simulation — accuracy is device-independent, runtime is not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.evaluator import FunctionEvaluator
from repro.core.objectives import ObjectiveSet
from repro.core.space import Configuration
from repro.devices.model import DeviceModel
from repro.slam.dataset import SyntheticRGBDDataset, make_icl_nuim_like_dataset
from repro.slam.elasticfusion import ElasticFusion, ElasticFusionConfig
from repro.slam.kfusion import KFusionConfig, KinectFusion
from repro.slam.metrics import ATEResult
from repro.slam.pipeline import FrameStats, PipelineResult
from repro.slambench.workload import sequence_runtime
from repro.utils.rng import derive_seed


@dataclass
class SlamRunRecord:
    """Cached outcome of one pipeline simulation (device-independent part)."""

    config: Dict[str, object]
    frames: List[FrameStats]
    ate: ATEResult
    pipeline: str
    n_tracking_failures: int

    def metrics_for(self, device: DeviceModel) -> Dict[str, float]:
        """Full metric dictionary (accuracy + runtime on ``device``)."""
        runtime = sequence_runtime(self.frames, self.config, device, self.pipeline)
        metrics: Dict[str, float] = {
            "mean_ate_m": self.ate.mean,
            "max_ate_m": self.ate.max,
            "rmse_ate_m": self.ate.rmse,
            "tracking_failures": float(self.n_tracking_failures),
        }
        metrics.update(runtime)
        return metrics


class SlamBenchRunner:
    """Runs SLAM pipelines over the synthetic sequence and scores configurations.

    Parameters
    ----------
    pipeline:
        ``"kfusion"`` or ``"elasticfusion"``.
    n_frames, width, height:
        Simulation scale (the reduced-scale defaults keep one configuration
        evaluation in the hundreds of milliseconds; the paper-scale sequence is
        400 frames at 640x480 on real hardware).
    dataset_seed:
        Seed of the synthetic dataset (noise streams, hand-shake jitter).
    pipeline_seed:
        Seed of the pipeline-internal error fields.
    dataset:
        Optionally inject a pre-built dataset (shared across runners).
    """

    def __init__(
        self,
        pipeline: str = "kfusion",
        n_frames: int = 60,
        width: int = 80,
        height: int = 60,
        dataset_seed: int = 0,
        pipeline_seed: int = 0,
        dataset: Optional[SyntheticRGBDDataset] = None,
        elasticfusion_kwargs: Optional[Mapping[str, object]] = None,
    ) -> None:
        if pipeline not in ("kfusion", "elasticfusion"):
            raise ValueError("pipeline must be 'kfusion' or 'elasticfusion'")
        self.pipeline = pipeline
        self.n_frames = int(n_frames)
        self.dataset = dataset if dataset is not None else make_icl_nuim_like_dataset(
            n_frames=n_frames, width=width, height=height, seed=dataset_seed
        )
        self.pipeline_seed = int(pipeline_seed)
        self.elasticfusion_kwargs = dict(elasticfusion_kwargs or {})
        self._cache: Dict[Tuple, SlamRunRecord] = {}

    # -- pipeline execution -----------------------------------------------------------
    @staticmethod
    def _cache_key(config: Mapping[str, object]) -> Tuple:
        return tuple(sorted((str(k), str(v)) for k, v in dict(config).items()))

    @property
    def n_simulations(self) -> int:
        """Number of distinct pipeline simulations executed so far."""
        return len(self._cache)

    def run_config(self, config: Mapping[str, object]) -> SlamRunRecord:
        """Run (or fetch from cache) the pipeline under ``config``."""
        key = self._cache_key(config)
        if key in self._cache:
            return self._cache[key]
        config_dict = dict(config)
        if self.pipeline == "kfusion":
            kf_config = KFusionConfig.from_mapping(config_dict)
            pipe = KinectFusion(kf_config, map_backend="analytic", seed=self.pipeline_seed)
            result: PipelineResult = pipe.run(self.dataset, n_frames=self.n_frames)
        else:
            ef_config = ElasticFusionConfig.from_mapping(config_dict)
            pipe = ElasticFusion(ef_config, seed=self.pipeline_seed, **self.elasticfusion_kwargs)
            result = pipe.run(self.dataset, n_frames=self.n_frames)
        ate = result.ate()
        record = SlamRunRecord(
            config=config_dict,
            frames=result.frames,
            ate=ate,
            pipeline=self.pipeline,
            n_tracking_failures=result.n_tracking_failures,
        )
        self._cache[key] = record
        return record

    # -- evaluation --------------------------------------------------------------------
    def evaluate(self, config: Mapping[str, object], device: DeviceModel) -> Dict[str, float]:
        """Evaluate one configuration on one device (accuracy + runtime)."""
        return self.run_config(config).metrics_for(device)

    def evaluation_function(self, device: DeviceModel) -> "BoundEvaluation":
        """A ``config -> metrics`` callable bound to ``device`` (for HyperMapper).

        Returns a picklable callable object rather than a closure so the same
        evaluation function works on process pools and remote socket workers.
        """
        return BoundEvaluation(self, device)

    def make_evaluator(self, device: DeviceModel, objectives: ObjectiveSet, max_evaluations: Optional[int] = None) -> FunctionEvaluator:
        """A budgeted :class:`FunctionEvaluator` bound to ``device``."""
        return FunctionEvaluator(self.evaluation_function(device), objectives, max_evaluations=max_evaluations)


class BoundEvaluation:
    """Picklable ``config -> metrics`` callable binding a runner to a device.

    Closures cannot cross process or socket boundaries; this object can —
    each worker gets its own copy of the runner (with its own simulation
    cache), which is fine because accuracy/runtime are deterministic in the
    configuration and seeds.
    """

    def __init__(self, runner: SlamBenchRunner, device: DeviceModel) -> None:
        self.runner = runner
        self.device = device

    def __call__(self, config: Configuration) -> Dict[str, float]:
        return self.runner.evaluate(config, self.device)


__all__ = ["SlamRunRecord", "SlamBenchRunner", "BoundEvaluation"]
