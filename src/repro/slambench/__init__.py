"""SLAMBench-style benchmarking harness.

This subpackage plays the role SLAMBench plays in the paper: it exposes the
two applications' algorithmic design spaces and default configurations
(:mod:`repro.slambench.parameters`), runs a pipeline over the dataset and
collects the two performance metrics — absolute trajectory error and per-frame
runtime (:mod:`repro.slambench.runner`) — where the runtime comes from the
per-kernel workload model (:mod:`repro.slambench.workload`) evaluated on a
device model from :mod:`repro.devices`.
"""

from repro.slambench.parameters import (
    kfusion_design_space,
    kfusion_default_config,
    kfusion_objectives,
    elasticfusion_design_space,
    elasticfusion_default_config,
    elasticfusion_objectives,
    ACCURACY_LIMIT_M,
)
from repro.slambench.workload import kfusion_frame_kernels, elasticfusion_frame_kernels, sequence_runtime
from repro.slambench.runner import SlamBenchRunner, SlamRunRecord
from repro.slambench.workloads import (
    SlamWorkload,
    KFusionWorkload,
    ElasticFusionWorkload,
    get_workload,
)

__all__ = [
    "SlamWorkload",
    "KFusionWorkload",
    "ElasticFusionWorkload",
    "get_workload",
    "kfusion_design_space",
    "kfusion_default_config",
    "kfusion_objectives",
    "elasticfusion_design_space",
    "elasticfusion_default_config",
    "elasticfusion_objectives",
    "ACCURACY_LIMIT_M",
    "kfusion_frame_kernels",
    "elasticfusion_frame_kernels",
    "sequence_runtime",
    "SlamBenchRunner",
    "SlamRunRecord",
]
