"""Table I: the ElasticFusion Pareto-efficiency points and their parameters.

The paper's Table I lists the default configuration plus a handful of Pareto
points found by the design-space exploration, reporting error, runtime and the
parameter values (ICP/RGB weight, depth cut-off, confidence, and the five
flags).  This harness derives the same rows from a Fig. 4 run: the default
row, the best-speed row, the best-accuracy row, and up to two intermediate
Pareto points.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import SMALL, ExperimentScale
from repro.experiments.fig4_elasticfusion_dse import run_fig4
from repro.slambench.parameters import table1_flag_columns
from repro.slambench.workloads import get_workload
from repro.utils.tables import format_table


def _row(label: str, config: Dict[str, object], metrics: Dict[str, float]) -> Dict[str, object]:
    flags = table1_flag_columns(config)
    return {
        "label": label,
        "error_m": float(metrics["mean_ate_m"]),
        "runtime_s": float(metrics["runtime_s"]),
        "icp_rgb_weight": float(config["icp_rgb_weight"]),
        "depth_cutoff": float(config["depth_cutoff"]),
        "confidence_threshold": float(config["confidence_threshold"]),
        **flags,
    }


def run_table1(
    scale: ExperimentScale = SMALL,
    seed: int = 11,
    fig4_result: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build the Table I rows (reuses a Fig. 4 result when provided)."""
    result = fig4_result if fig4_result is not None else run_fig4(scale=scale, seed=seed)

    rows: List[Dict[str, object]] = []
    default_config = dict(get_workload("elasticfusion").default_config())
    rows.append(_row("Default", default_config, result["default_metrics"]))

    pareto = list(result.get("pareto_records", []))
    pareto.sort(key=lambda r: r["metrics"]["runtime_s"])
    if pareto:
        best_speed = pareto[0]
        best_accuracy = min(pareto, key=lambda r: r["metrics"]["mean_ate_m"])
        rows.append(_row("Best speed", best_speed["config"], best_speed["metrics"]))
        # Up to two intermediate points between best speed and best accuracy.
        middle = [r for r in pareto if r is not best_speed and r is not best_accuracy]
        for r in middle[:2]:
            rows.append(_row("", r["config"], r["metrics"]))
        if best_accuracy is not best_speed:
            rows.append(_row("Best accuracy", best_accuracy["config"], best_accuracy["metrics"]))

    default_row = rows[0]
    speed_rows = [r for r in rows if r["label"] == "Best speed"]
    accuracy_rows = [r for r in rows if r["label"] == "Best accuracy"]
    summary = {
        "speedup_best_speed": (default_row["runtime_s"] / speed_rows[0]["runtime_s"]) if speed_rows else float("nan"),
        "accuracy_gain_best_accuracy": (default_row["error_m"] / accuracy_rows[0]["error_m"]) if accuracy_rows else float("nan"),
        "speedup_best_accuracy": (default_row["runtime_s"] / accuracy_rows[0]["runtime_s"]) if accuracy_rows else float("nan"),
    }
    return {
        "experiment": "table1_pareto",
        "scale": result["scale"],
        "platform": result["platform"],
        "rows": rows,
        "summary": summary,
        "paper_reference": {
            "default": {"error_m": 0.0558, "runtime_ms": 22.2},
            "best_speed": {"error_m": 0.0420, "runtime_ms": 14.6, "speedup": 1.52},
            "best_accuracy": {"error_m": 0.0269, "runtime_ms": 17.2, "accuracy_gain": 2.07},
        },
    }


def format_table1(result: Dict[str, object]) -> str:
    """Plain-text rendering of the reproduced Table I."""
    headers = [
        "", "Error (m)", "Runtime (ms)", "ICP", "Depth", "Confidence",
        "SO3", "Close-Loops", "Reloc", "Fast-Odom", "FTF RGB",
    ]
    table_rows = []
    for row in result["rows"]:
        table_rows.append(
            [
                row["label"],
                f"{row['error_m']:.4f}",
                f"{row['runtime_s'] * 1000:.1f}",
                f"{row['icp_rgb_weight']:g}",
                f"{row['depth_cutoff']:g}",
                f"{row['confidence_threshold']:g}",
                row["SO3"],
                row["Close-Loops"],
                row["Reloc"],
                row["Fast-Odom"],
                row["FTF RGB"],
            ]
        )
    table = format_table(table_rows, headers=headers, title=f"Table I — ElasticFusion Pareto points on {result['platform']} (scale: {result['scale']})")
    s = result["summary"]
    footer = (
        f"\nbest-speed speedup over default: {s['speedup_best_speed']:.2f}x "
        f"(paper: 1.52x); best-accuracy improvement: {s['accuracy_gain_best_accuracy']:.2f}x "
        f"(paper: 2.07x) at {s['speedup_best_accuracy']:.2f}x speedup (paper: 1.29x)"
    )
    return table + footer


__all__ = ["run_table1", "format_table1"]
