"""Figure 3: KFusion algorithmic design-space exploration (ODROID-XU3 / ASUS).

Reproduces the random-sampling vs active-learning comparison of Fig. 3 and the
headline numbers of Section IV:

* number of valid configurations (max ATE below the 5 cm limit) found by the
  random-sampling phase and added by active learning,
* number of points on the final Pareto front,
* the default configuration's frame rate (about 6 FPS on the ODROID-XU3),
* the best-runtime valid configuration and its speedup over the default
  (6.35x in the paper), including a configuration in the real-time range.

The exploration is expressed as a declarative scenario executed through the
:class:`~repro.core.study.Study` front door — the same wire format the CLI
(``python -m repro run``) and any remote frontend submit — with a pre-built
runner injected so consecutive platforms share one simulation cache.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.core.objectives import ObjectiveSet
from repro.core.study import Study, StudyResult
from repro.devices.catalog import get_device
from repro.devices.model import DeviceModel
from repro.experiments.common import (
    SMALL,
    ExperimentScale,
    executor_spec,
    history_stats,
    make_runner,
    slambench_evaluator_spec,
)
from repro.slambench.parameters import ACCURACY_LIMIT_M
from repro.slambench.runner import SlamBenchRunner
from repro.slambench.workloads import get_workload
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table


def _front_series(records, objectives: ObjectiveSet) -> List[Dict[str, float]]:
    return [
        {objectives.names[0]: float(r.metrics[objectives.names[0]]), "runtime_s": float(r.metrics["runtime_s"])}
        for r in records
    ]


def fig3_scenario(
    platform: str = "odroid-xu3",
    scale: ExperimentScale = SMALL,
    seed: int = 7,
    accuracy_limit_m: float = ACCURACY_LIMIT_M,
    acquisition: Union[str, Mapping, None] = None,
    n_workers: Optional[int] = None,
    overlap_fraction: Optional[float] = None,
) -> Dict[str, object]:
    """The Fig. 3 exploration as a plain scenario dict (JSON-serializable)."""
    search: Dict[str, object] = {
        "algorithm": "hypermapper",
        "n_random_samples": scale.n_random_samples,
        "max_iterations": scale.max_iterations,
        "pool_size": scale.pool_size,
        "max_samples_per_iteration": scale.max_samples_per_iteration,
    }
    if acquisition is not None:
        search["acquisition"] = acquisition
    return {
        "schema_version": 1,
        "name": f"fig3-kfusion-{platform}",
        "evaluator": slambench_evaluator_spec(
            "kfusion", platform, scale, dataset_seed=seed, accuracy_limit_m=accuracy_limit_m
        ),
        "search": search,
        "executor": executor_spec(scale, n_workers, overlap_fraction),
        "seed": derive_seed(seed, "fig3", platform),
    }


def fig3_sweep_spec(
    platforms: Sequence[str] = ("odroid-xu3", "asus-t200ta"),
    scale: ExperimentScale = SMALL,
    seed: int = 7,
    accuracy_limit_m: float = ACCURACY_LIMIT_M,
    max_concurrent: int = 2,
) -> Dict[str, object]:
    """The whole Fig. 3 campaign as one sweep spec (JSON-serializable).

    One base scenario plus an explicit point per platform, each overriding
    ``evaluator.device`` and ``seed`` exactly as the historical per-platform
    ``run_fig3`` calls did — so every sweep point's history is bit-identical
    to the corresponding standalone run.
    """
    return {
        "schema_version": 1,
        "name": "fig3-kfusion-sweep",
        "scheduler": {"max_concurrent_studies": max_concurrent},
        "base": fig3_scenario(platforms[0], scale, seed, accuracy_limit_m),
        "points": [
            {"evaluator.device": platform, "seed": derive_seed(seed, "fig3", platform)}
            for platform in platforms
        ],
    }


def run_fig3_device_sweep(
    sweep_dir: str,
    platforms: Sequence[str] = ("odroid-xu3", "asus-t200ta"),
    scale: ExperimentScale = SMALL,
    seed: int = 7,
    runner: Optional[SlamBenchRunner] = None,
    accuracy_limit_m: float = ACCURACY_LIMIT_M,
    max_concurrent: Optional[int] = None,
    resume: bool = False,
):
    """Run the Fig. 3 exploration on every platform through one sweep.

    The shared ``runner`` (built once when not supplied) lets all device
    points reuse the same simulation cache — accuracy is device-independent,
    only the runtime model differs — mirroring how the historical code
    passed one runner to consecutive ``run_fig3`` calls.  Returns the
    :class:`~repro.core.sweep.SweepResult`; the cross-run comparison
    (fronts, hypervolumes, budget-to-quality curves) lands in
    ``<sweep_dir>/comparison.json``.
    """
    from repro.core.sweep import run_sweep

    runner = runner if runner is not None else make_runner("kfusion", scale, dataset_seed=seed)
    spec = fig3_sweep_spec(platforms, scale, seed, accuracy_limit_m)
    return run_sweep(
        spec, sweep_dir, runner=runner, max_concurrent=max_concurrent, resume=resume
    )


def run_fig3(
    platform: str = "odroid-xu3",
    scale: ExperimentScale = SMALL,
    seed: int = 7,
    runner: Optional[SlamBenchRunner] = None,
    accuracy_limit_m: float = ACCURACY_LIMIT_M,
    acquisition: Union[str, Mapping, None] = None,
    n_workers: Optional[int] = None,
    overlap_fraction: Optional[float] = None,
    checkpoint_path: Optional[str] = None,
    resume_from: Optional[str] = None,
    run_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Run the KFusion DSE on one platform and collect the Fig. 3 statistics.

    Pass the same ``runner`` to consecutive calls (ODROID then ASUS) to reuse
    the cached pipeline simulations across platforms — accuracy is
    device-independent, so only the runtime side differs.  ``acquisition``
    takes a registered name (or ``{"name": ..., <params>}`` spec);
    ``run_dir`` persists the study's versioned artifact directory, and
    ``checkpoint_path``/``resume_from`` give dir-less checkpointing for long
    campaigns.  The defaults keep the paper's serial Algorithm 1,
    bit-identical to the historical hand-wired ``HyperMapper(...)`` call.
    """
    device: DeviceModel = get_device(platform)
    runner = runner if runner is not None else make_runner("kfusion", scale, dataset_seed=seed)
    scenario = fig3_scenario(
        platform, scale, seed, accuracy_limit_m, acquisition, n_workers, overlap_fraction
    )
    study = Study(scenario, runner=runner)
    result: StudyResult = study.run(
        run_dir=run_dir, resume_from=resume_from, checkpoint_path=checkpoint_path
    )

    space = get_workload("kfusion").space()
    objectives = result.objectives
    history = result.history
    random_history = history.filter(source="random")

    default_config = get_workload("kfusion").default_config()
    default_metrics = runner.evaluate(default_config, device)

    random_front = random_history.pareto_records()
    full_front = result.pareto
    best_speed = result.best_by("runtime_s")
    best_accuracy = result.best_by("max_ate_m")
    stats = history_stats(result)

    # Headline numbers.
    speedup = default_metrics["runtime_s"] / best_speed.metrics["runtime_s"] if best_speed else float("nan")
    real_time = [r for r in full_front if r.metrics["runtime_s"] <= 1.0 / 30.0]

    out: Dict[str, object] = {
        "experiment": "fig3_kfusion_dse",
        "platform": device.name,
        "platform_key": platform,
        "scale": scale.name,
        "scenario": result.scenario.to_dict(),
        "space_cardinality": float(space.cardinality),
        "accuracy_limit_m": accuracy_limit_m,
        "n_random_samples": stats["n_random_samples"],
        "n_active_learning_samples": stats["n_active_learning_samples"],
        "n_active_learning_iterations": len(result.iterations),
        "samples_per_iteration": [r.n_new_samples for r in result.iterations],
        "n_valid_random": stats["n_valid_random"],
        "n_valid_active_learning": stats["n_valid_active_learning"],
        "n_pareto_points": len(full_front),
        "n_pareto_points_random_only": stats["n_pareto_points_random_only"],
        "default_metrics": {k: float(v) for k, v in default_metrics.items()},
        "default_fps": float(default_metrics["fps"]),
        "best_speed_config": dict(best_speed.config) if best_speed else None,
        "best_speed_metrics": dict(best_speed.metrics) if best_speed else None,
        "best_speed_fps": float(1.0 / best_speed.metrics["runtime_s"]) if best_speed else float("nan"),
        "best_speedup_over_default": float(speedup),
        "best_accuracy_config": dict(best_accuracy.config) if best_accuracy else None,
        "best_accuracy_metrics": dict(best_accuracy.metrics) if best_accuracy else None,
        "n_real_time_configs_on_front": len(real_time),
        "random_front": _front_series(random_front, objectives),
        "active_learning_front": _front_series(full_front, objectives),
        "iteration_reports": [r.to_dict() for r in result.iterations],
        "n_pipeline_simulations": runner.n_simulations,
        "engine": dict(result.engine_info),
        "run_dir": None if result.run_dir is None else str(result.run_dir),
    }
    return out


def format_fig3(result: Dict[str, object]) -> str:
    """Plain-text report mirroring Fig. 3 and the Section IV-B headline numbers."""
    lines: List[str] = []
    lines.append(f"Fig. 3 — KFusion DSE on {result['platform']} (scale: {result['scale']})")
    lines.append(
        f"  random sampling: {result['n_random_samples']} samples, "
        f"{result['n_valid_random']} valid (max ATE < {result['accuracy_limit_m'] * 100:.0f} cm)"
    )
    lines.append(
        f"  active learning: {result['n_active_learning_samples']} samples over "
        f"{result['n_active_learning_iterations']} iterations "
        f"({result['samples_per_iteration']}), {result['n_valid_active_learning']} new valid"
    )
    lines.append(
        f"  Pareto front: {result['n_pareto_points']} points "
        f"(random sampling alone: {result['n_pareto_points_random_only']})"
    )
    default = result["default_metrics"]
    lines.append(
        f"  default configuration: {default['runtime_s'] * 1000:.1f} ms/frame "
        f"({result['default_fps']:.1f} FPS), max ATE {default['max_ate_m'] * 100:.2f} cm"
    )
    if result["best_speed_metrics"]:
        bs = result["best_speed_metrics"]
        lines.append(
            f"  best-speed valid configuration: {bs['runtime_s'] * 1000:.1f} ms/frame "
            f"({result['best_speed_fps']:.1f} FPS), max ATE {bs['max_ate_m'] * 100:.2f} cm "
            f"-> speedup {result['best_speedup_over_default']:.2f}x over default"
        )
    lines.append(f"  Pareto configurations in the real-time range (>= 30 FPS): {result['n_real_time_configs_on_front']}")
    front = result["active_learning_front"]
    if front:
        rows = [[f"{p['runtime_s'] * 1000:.1f}", f"{p['max_ate_m'] * 100:.2f}"] for p in front[:20]]
        lines.append(format_table(rows, headers=["runtime (ms/frame)", "max ATE (cm)"], title="  Final Pareto front (first 20 points):"))
    return "\n".join(lines)


__all__ = [
    "fig3_scenario",
    "fig3_sweep_spec",
    "run_fig3",
    "run_fig3_device_sweep",
    "format_fig3",
]
