"""Ablation studies complementing the paper's evaluation.

Two ablations referenced in DESIGN.md:

* **Search-strategy comparison** — HyperMapper's random-forest active learning
  against plain random search, an NSGA-II-style evolutionary search and an
  OpenTuner-style bandit, all at the same evaluation budget, scored by
  dominated hypervolume and by the number of valid configurations found.
* **Forest-size sensitivity** — how the number of trees in the per-objective
  forests affects the quality of the predicted Pareto front (surrogate
  out-of-bag error and final hypervolume).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.baselines import BanditSearch, EvolutionarySearch, RandomSearch
from repro.core.executor import EvaluationExecutor
from repro.core.optimizer import HyperMapper
from repro.core.pareto import hypervolume_2d
from repro.devices.catalog import ODROID_XU3
from repro.experiments.common import SMALL, ExperimentScale, make_runner
from repro.slambench.parameters import kfusion_design_space, kfusion_objectives
from repro.slambench.runner import SlamBenchRunner
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table


def _hypervolume(history, objectives, reference) -> float:
    front = history.pareto_matrix()
    if front.shape[0] == 0:
        return 0.0
    return hypervolume_2d(objectives.to_canonical(front), reference)


def run_search_strategy_ablation(
    scale: ExperimentScale = SMALL,
    budget: Optional[int] = None,
    seed: int = 23,
    runner: Optional[SlamBenchRunner] = None,
    include_acquisition_variants: bool = True,
) -> Dict[str, object]:
    """Compare search strategies at an equal hardware-evaluation budget.

    Besides the classic baselines, the ablation also sweeps the engine's
    pluggable acquisition strategies (uncertainty-weighted LCB and
    epsilon-greedy exploration) against the paper's predicted-Pareto
    default — same driver, same executor, different proposal policy.
    """
    runner = runner if runner is not None else make_runner("kfusion", scale, dataset_seed=seed)
    space = kfusion_design_space()
    objectives = kfusion_objectives()
    device = ODROID_XU3
    # One shared executor across every search: the acquisition variants run
    # the identical seeded bootstrap, so their duplicated evaluations are
    # served from the memoized results instead of re-running the black box.
    evaluate = EvaluationExecutor(runner.evaluation_function(device), objectives)
    budget = budget if budget is not None else scale.n_random_samples + scale.max_iterations * scale.max_samples_per_iteration

    # A common hypervolume reference point (worse than anything interesting).
    reference = np.array([0.2, 2.0])  # 20 cm max ATE, 2 s/frame

    results: List[Dict[str, object]] = []

    def _row(name: str, res) -> Dict[str, object]:
        return {
            "strategy": name,
            "n_evaluations": len(res.history),
            "n_valid": res.history.n_feasible(),
            "n_pareto": len(res.pareto),
            "hypervolume": _hypervolume(res.history, objectives, reference),
        }

    hm_kwargs = dict(
        n_random_samples=max(budget // 2, 4),
        max_iterations=scale.max_iterations,
        pool_size=scale.pool_size,
        max_samples_per_iteration=max(budget // (2 * max(scale.max_iterations, 1)), 2),
    )
    hm = HyperMapper(
        space,
        objectives,
        evaluate,
        seed=derive_seed(seed, "ablation", "hypermapper"),
        **hm_kwargs,
    )
    results.append(_row("hypermapper", hm.run()))

    if include_acquisition_variants:
        for label, acquisition in (
            ("hypermapper_ucb", "uncertainty_weighted"),
            ("hypermapper_eps", "epsilon_greedy"),
        ):
            variant = HyperMapper(
                space,
                objectives,
                evaluate,
                seed=derive_seed(seed, "ablation", "hypermapper"),
                acquisition=acquisition,
                **hm_kwargs,
            )
            results.append(_row(label, variant.run()))

    searches = {
        "random": RandomSearch(space, objectives, evaluate, seed=derive_seed(seed, "ablation", "random")),
        "evolutionary": EvolutionarySearch(space, objectives, evaluate, seed=derive_seed(seed, "ablation", "evolutionary")),
        "bandit": BanditSearch(space, objectives, evaluate, seed=derive_seed(seed, "ablation", "bandit")),
    }
    for name, search in searches.items():
        results.append(_row(name, search.run(budget)))

    baselines = [r for r in results if not str(r["strategy"]).startswith("hypermapper")]
    return {
        "experiment": "ablation_search_strategy",
        "scale": scale.name,
        "budget": budget,
        "reference_point": reference.tolist(),
        "results": results,
        "hypermapper_wins_hypervolume": bool(
            results[0]["hypervolume"] >= max(r["hypervolume"] for r in baselines)
        ),
    }


def run_forest_size_ablation(
    scale: ExperimentScale = SMALL,
    forest_sizes: Optional[List[int]] = None,
    seed: int = 29,
    runner: Optional[SlamBenchRunner] = None,
) -> Dict[str, object]:
    """Sensitivity of the exploration outcome to the number of trees."""
    runner = runner if runner is not None else make_runner("kfusion", scale, dataset_seed=seed)
    space = kfusion_design_space()
    objectives = kfusion_objectives()
    device = ODROID_XU3
    # Shared executor: every forest size warm-starts from the same bootstrap,
    # so repeated configurations are memoized across runs.
    evaluate = EvaluationExecutor(runner.evaluation_function(device), objectives)
    forest_sizes = forest_sizes or [4, 16, 48]
    reference = np.array([0.2, 2.0])

    # The bootstrap random-sampling phase is identical for every forest size,
    # so it is evaluated once and shared as a warm start.
    shared_random = RandomSearch(space, objectives, evaluate, seed=derive_seed(seed, "forest-size", "bootstrap")).run(
        scale.n_random_samples
    )

    rows = []
    for n_trees in forest_sizes:
        hm = HyperMapper(
            space,
            objectives,
            evaluate,
            n_random_samples=scale.n_random_samples,
            max_iterations=max(scale.max_iterations - 1, 1),
            pool_size=scale.pool_size,
            max_samples_per_iteration=scale.max_samples_per_iteration,
            surrogate_kwargs={"n_estimators": n_trees},
            seed=derive_seed(seed, "forest-size", n_trees),
        )
        result = hm.run(initial_history=shared_random.history)
        oob = result.surrogate.oob_errors() if result.surrogate is not None else {}
        rows.append(
            {
                "n_trees": n_trees,
                "n_evaluations": len(result.history),
                "n_pareto": len(result.pareto),
                "hypervolume": _hypervolume(result.history, objectives, reference),
                "oob_mse": {k: float(v) for k, v in oob.items()},
            }
        )
    return {
        "experiment": "ablation_forest_size",
        "scale": scale.name,
        "results": rows,
    }


def format_search_strategy_ablation(result: Dict[str, object]) -> str:
    """Plain-text table of the search-strategy ablation."""
    rows = [
        [r["strategy"], r["n_evaluations"], r["n_valid"], r["n_pareto"], f"{r['hypervolume']:.5f}"]
        for r in result["results"]
    ]
    return format_table(
        rows,
        headers=["strategy", "evaluations", "valid", "Pareto points", "hypervolume"],
        title=f"Search-strategy ablation (budget {result['budget']}, scale {result['scale']})",
    )


__all__ = [
    "run_search_strategy_ablation",
    "run_forest_size_ablation",
    "format_search_strategy_ablation",
]
