"""Ablation studies complementing the paper's evaluation.

Two ablations referenced in DESIGN.md:

* **Search-strategy comparison** — HyperMapper's random-forest active learning
  against plain random search, an NSGA-II-style evolutionary search and an
  OpenTuner-style bandit, all at the same evaluation budget, scored by
  dominated hypervolume and by the number of valid configurations found.
* **Forest-size sensitivity** — how the number of trees in the per-objective
  forests affects the quality of the predicted Pareto front (surrogate
  out-of-bag error and final hypervolume).

Every run is a declarative scenario executed through
:class:`~repro.core.study.Study`; the strategies differ only in their
``search`` section (algorithm / acquisition / surrogate), and all of them
share one injected :class:`~repro.core.executor.EvaluationExecutor` so
duplicated bootstrap evaluations are served from the memoized results
instead of re-running the black box.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.executor import EvaluationExecutor
from repro.core.optimizer import HyperMapper
from repro.core.pareto import hypervolume_2d
from repro.core.study import Study
from repro.devices.catalog import ODROID_XU3
from repro.experiments.common import SMALL, ExperimentScale, make_runner
from repro.slambench.runner import SlamBenchRunner
from repro.slambench.workloads import get_workload
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table


def _hypervolume(history, objectives, reference) -> float:
    front = history.pareto_matrix()
    if front.shape[0] == 0:
        return 0.0
    return hypervolume_2d(objectives.to_canonical(front), reference)


def _kfusion_problem_sections() -> Dict[str, object]:
    """Explicit ``space``/``objectives`` sections for the KFusion problem.

    Declaring the problem explicitly (rather than letting the ``slambench``
    evaluator supply it) lets every ablation scenario share one injected
    executor without rebuilding runners; both sections are derived from the
    workload so there is exactly one source of truth.
    """
    workload = get_workload("kfusion")
    return {
        "space": workload.space().to_dict(),
        "objectives": [
            {"name": o.name, "minimize": o.minimize, "unit": o.unit, "limit": o.limit}
            for o in workload.objectives()
        ],
    }


def _ablation_scenario(
    name: str, search: Dict[str, object], seed: int, problem: Dict[str, object]
) -> Dict[str, object]:
    return {
        "schema_version": 1,
        "name": name,
        "evaluator": {"type": "function"},
        "search": search,
        "seed": seed,
        **problem,
    }


def run_search_strategy_ablation(
    scale: ExperimentScale = SMALL,
    budget: Optional[int] = None,
    seed: int = 23,
    runner: Optional[SlamBenchRunner] = None,
    include_acquisition_variants: bool = True,
) -> Dict[str, object]:
    """Compare search strategies at an equal hardware-evaluation budget.

    Besides the classic baselines, the ablation also sweeps the engine's
    pluggable acquisition strategies (uncertainty-weighted LCB and
    epsilon-greedy exploration) against the paper's predicted-Pareto
    default — same driver, same shared executor, different ``search``
    section in the scenario.
    """
    runner = runner if runner is not None else make_runner("kfusion", scale, dataset_seed=seed)
    workload = get_workload("kfusion")
    objectives = workload.objectives()
    device = ODROID_XU3
    problem = _kfusion_problem_sections()
    # One shared executor across every search: the acquisition variants run
    # the identical seeded bootstrap, so their duplicated evaluations are
    # served from the memoized results instead of re-running the black box.
    evaluate = EvaluationExecutor(runner.evaluation_function(device), objectives)
    budget = budget if budget is not None else scale.n_random_samples + scale.max_iterations * scale.max_samples_per_iteration

    # A common hypervolume reference point (worse than anything interesting).
    reference = np.array([0.2, 2.0])  # 20 cm max ATE, 2 s/frame

    results: List[Dict[str, object]] = []

    def _row(name: str, res) -> Dict[str, object]:
        return {
            "strategy": name,
            "n_evaluations": len(res.history),
            "n_valid": res.history.n_feasible(),
            "n_pareto": len(res.pareto),
            "hypervolume": _hypervolume(res.history, objectives, reference),
        }

    hm_search = {
        "algorithm": "hypermapper",
        "n_random_samples": max(budget // 2, 4),
        "max_iterations": scale.max_iterations,
        "pool_size": scale.pool_size,
        "max_samples_per_iteration": max(budget // (2 * max(scale.max_iterations, 1)), 2),
    }
    hm_seed = derive_seed(seed, "ablation", "hypermapper")
    variants: List[Dict[str, object]] = [dict(hm_search)]
    labels = ["hypermapper"]
    if include_acquisition_variants:
        for label, acquisition in (
            ("hypermapper_ucb", "uncertainty_weighted"),
            ("hypermapper_eps", "epsilon_greedy"),
        ):
            variants.append(dict(hm_search, acquisition=acquisition))
            labels.append(label)
    for label, search in zip(labels, variants):
        study = Study(
            _ablation_scenario(f"ablation-{label}", search, hm_seed, problem),
            executor=evaluate,
        )
        results.append(_row(label, study.run()))

    for name in ("random", "evolutionary", "bandit"):
        study = Study(
            _ablation_scenario(
                f"ablation-{name}",
                {"algorithm": name, "budget": budget},
                derive_seed(seed, "ablation", name),
                problem,
            ),
            executor=evaluate,
        )
        results.append(_row(name, study.run()))

    baselines = [r for r in results if not str(r["strategy"]).startswith("hypermapper")]
    return {
        "experiment": "ablation_search_strategy",
        "scale": scale.name,
        "budget": budget,
        "reference_point": reference.tolist(),
        "results": results,
        "hypermapper_wins_hypervolume": bool(
            results[0]["hypervolume"] >= max(r["hypervolume"] for r in baselines)
        ),
    }


def run_forest_size_ablation(
    scale: ExperimentScale = SMALL,
    forest_sizes: Optional[List[int]] = None,
    seed: int = 29,
    runner: Optional[SlamBenchRunner] = None,
) -> Dict[str, object]:
    """Sensitivity of the exploration outcome to the number of trees."""
    runner = runner if runner is not None else make_runner("kfusion", scale, dataset_seed=seed)
    workload = get_workload("kfusion")
    objectives = workload.objectives()
    device = ODROID_XU3
    problem = _kfusion_problem_sections()
    # Shared executor: every forest size warm-starts from the same bootstrap,
    # so repeated configurations are memoized across runs.
    evaluate = EvaluationExecutor(runner.evaluation_function(device), objectives)
    forest_sizes = forest_sizes or [4, 16, 48]
    reference = np.array([0.2, 2.0])

    # The bootstrap random-sampling phase is identical for every forest size,
    # so it is evaluated once and shared as a warm start.
    shared_random = Study(
        _ablation_scenario(
            "ablation-forest-bootstrap",
            {"algorithm": "random", "budget": scale.n_random_samples},
            derive_seed(seed, "forest-size", "bootstrap"),
            problem,
        ),
        executor=evaluate,
    ).run()

    rows = []
    for n_trees in forest_sizes:
        # The warm-start history is an in-memory object, so this run goes
        # through the HyperMapper facade directly — the scenario-equivalent
        # search section is what `Study` would compile to.
        hm = HyperMapper(
            workload.space(),
            objectives,
            evaluate,
            n_random_samples=scale.n_random_samples,
            max_iterations=max(scale.max_iterations - 1, 1),
            pool_size=scale.pool_size,
            max_samples_per_iteration=scale.max_samples_per_iteration,
            surrogate_kwargs={"n_estimators": n_trees},
            seed=derive_seed(seed, "forest-size", n_trees),
        )
        result = hm.run(initial_history=shared_random.history)
        oob = result.surrogate.oob_errors() if result.surrogate is not None else {}
        rows.append(
            {
                "n_trees": n_trees,
                "n_evaluations": len(result.history),
                "n_pareto": len(result.pareto),
                "hypervolume": _hypervolume(result.history, objectives, reference),
                "oob_mse": {k: float(v) for k, v in oob.items()},
            }
        )
    return {
        "experiment": "ablation_forest_size",
        "scale": scale.name,
        "results": rows,
    }


def format_search_strategy_ablation(result: Dict[str, object]) -> str:
    """Plain-text table of the search-strategy ablation."""
    rows = [
        [r["strategy"], r["n_evaluations"], r["n_valid"], r["n_pareto"], f"{r['hypervolume']:.5f}"]
        for r in result["results"]
    ]
    return format_table(
        rows,
        headers=["strategy", "evaluations", "valid", "Pareto points", "hypervolume"],
        title=f"Search-strategy ablation (budget {result['budget']}, scale {result['scale']})",
    )


__all__ = [
    "run_search_strategy_ablation",
    "run_forest_size_ablation",
    "format_search_strategy_ablation",
]
