"""Shared experiment configuration: scales, runner factories, result packing.

The paper's evaluation takes about five days of hardware time (3,000 random
samples plus active learning over a 400-frame sequence).  The reproduction
exposes the same experiments at several scales:

* ``SMOKE`` — seconds; used by the test suite.
* ``SMALL`` — a few minutes per experiment; the default for the benchmark
  harness.
* ``MEDIUM`` — tens of minutes; closer sampling budgets.
* ``PAPER`` — the paper's budgets (documented; impractical in pure Python on a
  laptop but runnable if you have the time).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.core.study import StudyResult
from repro.slambench.runner import SlamBenchRunner
from repro.slambench.workloads import get_workload


@dataclass(frozen=True)
class ExperimentScale:
    """Scaling knobs shared by all experiments.

    Attributes
    ----------
    name:
        Label recorded in experiment outputs.
    n_frames, width, height:
        Synthetic sequence length and simulation resolution.
    n_random_samples:
        Bootstrap random-sampling budget (the paper uses 3,000 for KFusion and
        2,400 for ElasticFusion).
    max_iterations:
        Active-learning iterations (the paper runs about 6).
    max_samples_per_iteration:
        Cap on new evaluations per active-learning iteration (100-300 in the
        paper).
    pool_size:
        Size of the configuration pool the surrogate predicts over.
    crowd_devices:
        Number of devices in the crowd-sourcing fleet (83 in the paper).
    n_eval_workers:
        Worker count of the evaluation executor.  ``1`` keeps the serial
        reference path (bit-identical results); larger values fan SLAM
        evaluations out over a thread pool, mirroring how the paper farms
        runs out to boards.
    """

    name: str
    n_frames: int
    width: int
    height: int
    n_random_samples: int
    max_iterations: int
    max_samples_per_iteration: int
    pool_size: int
    crowd_devices: int = 83
    n_eval_workers: int = 1

    def with_overrides(self, **kwargs) -> "ExperimentScale":
        """A copy with some fields replaced."""
        return replace(self, **kwargs)


SMOKE = ExperimentScale(
    name="smoke",
    n_frames=14,
    width=40,
    height=30,
    n_random_samples=12,
    max_iterations=2,
    max_samples_per_iteration=8,
    pool_size=400,
    crowd_devices=12,
)

SMALL = ExperimentScale(
    name="small",
    n_frames=40,
    width=64,
    height=48,
    n_random_samples=90,
    max_iterations=3,
    max_samples_per_iteration=40,
    pool_size=4000,
    crowd_devices=83,
)

MEDIUM = ExperimentScale(
    name="medium",
    n_frames=80,
    width=80,
    height=60,
    n_random_samples=400,
    max_iterations=5,
    max_samples_per_iteration=120,
    pool_size=20000,
    crowd_devices=83,
)

PAPER = ExperimentScale(
    name="paper",
    n_frames=400,
    width=640,
    height=480,
    n_random_samples=3000,
    max_iterations=6,
    max_samples_per_iteration=300,
    pool_size=100000,
    crowd_devices=83,
)


def make_runner(pipeline: str, scale: ExperimentScale, dataset_seed: int = 1, pipeline_seed: int = 0) -> SlamBenchRunner:
    """Build a :class:`SlamBenchRunner` matching the experiment scale.

    Resolution goes through the workload registry, so a registered
    third-party workload name works here exactly like ``"kfusion"`` /
    ``"elasticfusion"`` (whose defaults include the DSE-scale fusion stride).
    """
    return get_workload(pipeline).make_runner(
        n_frames=scale.n_frames,
        width=scale.width,
        height=scale.height,
        dataset_seed=dataset_seed,
        pipeline_seed=pipeline_seed,
    )


def slambench_evaluator_spec(
    workload: str,
    device: str,
    scale: ExperimentScale,
    dataset_seed: int = 1,
    accuracy_limit_m: Optional[float] = None,
) -> Dict[str, object]:
    """The scenario ``evaluator`` section matching an experiment scale."""
    spec: Dict[str, object] = {
        "type": "slambench",
        "workload": workload,
        "device": device,
        "n_frames": scale.n_frames,
        "width": scale.width,
        "height": scale.height,
        "dataset_seed": dataset_seed,
    }
    if accuracy_limit_m is not None:
        spec["accuracy_limit_m"] = accuracy_limit_m
    return spec


def executor_spec(
    scale: ExperimentScale,
    n_workers: Optional[int] = None,
    overlap_fraction: Optional[float] = None,
) -> Dict[str, object]:
    """The scenario ``executor`` section matching an experiment scale."""
    workers = scale.n_eval_workers if n_workers is None else int(n_workers)
    return {"n_workers": workers, "overlap_fraction": overlap_fraction}


def history_stats(result: StudyResult) -> Dict[str, object]:
    """Summary statistics from the run's *persisted* history.

    For studies executed with a run directory the numbers come from
    ``history.jsonl`` — the single source of truth the report layer also
    reads — instead of being recomputed from in-memory objects; ephemeral
    runs fall back to the in-memory history (identical by construction,
    tested in ``tests/test_study_cli.py``).
    """
    history = result.persisted_history()
    pareto = history.pareto_records(feasible_only=True)
    random_history = history.filter(source="random")
    al_history = history.filter(source="active_learning")
    return {
        "n_evaluations": len(history),
        "n_feasible": history.n_feasible(),
        "n_pareto_points": len(pareto),
        "n_random_samples": len(random_history),
        "n_active_learning_samples": len(al_history),
        "n_valid_random": random_history.n_feasible(),
        "n_valid_active_learning": al_history.n_feasible(),
        "n_pareto_points_random_only": len(random_history.pareto_records()),
    }


__all__ = [
    "ExperimentScale",
    "SMOKE",
    "SMALL",
    "MEDIUM",
    "PAPER",
    "make_runner",
    "slambench_evaluator_spec",
    "executor_spec",
    "history_stats",
]
