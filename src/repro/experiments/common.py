"""Shared experiment configuration: scales, runner factories, result packing.

The paper's evaluation takes about five days of hardware time (3,000 random
samples plus active learning over a 400-frame sequence).  The reproduction
exposes the same experiments at several scales:

* ``SMOKE`` — seconds; used by the test suite.
* ``SMALL`` — a few minutes per experiment; the default for the benchmark
  harness.
* ``MEDIUM`` — tens of minutes; closer sampling budgets.
* ``PAPER`` — the paper's budgets (documented; impractical in pure Python on a
  laptop but runnable if you have the time).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional

from repro.core.executor import EvaluationExecutor
from repro.core.objectives import ObjectiveSet
from repro.slambench.runner import SlamBenchRunner


@dataclass(frozen=True)
class ExperimentScale:
    """Scaling knobs shared by all experiments.

    Attributes
    ----------
    name:
        Label recorded in experiment outputs.
    n_frames, width, height:
        Synthetic sequence length and simulation resolution.
    n_random_samples:
        Bootstrap random-sampling budget (the paper uses 3,000 for KFusion and
        2,400 for ElasticFusion).
    max_iterations:
        Active-learning iterations (the paper runs about 6).
    max_samples_per_iteration:
        Cap on new evaluations per active-learning iteration (100-300 in the
        paper).
    pool_size:
        Size of the configuration pool the surrogate predicts over.
    crowd_devices:
        Number of devices in the crowd-sourcing fleet (83 in the paper).
    n_eval_workers:
        Worker count of the evaluation executor.  ``1`` keeps the serial
        reference path (bit-identical results); larger values fan SLAM
        evaluations out over a thread pool, mirroring how the paper farms
        runs out to boards.
    """

    name: str
    n_frames: int
    width: int
    height: int
    n_random_samples: int
    max_iterations: int
    max_samples_per_iteration: int
    pool_size: int
    crowd_devices: int = 83
    n_eval_workers: int = 1

    def with_overrides(self, **kwargs) -> "ExperimentScale":
        """A copy with some fields replaced."""
        return replace(self, **kwargs)


def make_executor(
    fn: Callable,
    objectives: ObjectiveSet,
    scale: ExperimentScale,
    n_workers: Optional[int] = None,
    max_evaluations: Optional[int] = None,
) -> EvaluationExecutor:
    """Build the experiment's evaluation executor from the scale's knobs."""
    workers = scale.n_eval_workers if n_workers is None else int(n_workers)
    return EvaluationExecutor(
        fn, objectives, n_workers=workers, max_evaluations=max_evaluations
    )


SMOKE = ExperimentScale(
    name="smoke",
    n_frames=14,
    width=40,
    height=30,
    n_random_samples=12,
    max_iterations=2,
    max_samples_per_iteration=8,
    pool_size=400,
    crowd_devices=12,
)

SMALL = ExperimentScale(
    name="small",
    n_frames=40,
    width=64,
    height=48,
    n_random_samples=90,
    max_iterations=3,
    max_samples_per_iteration=40,
    pool_size=4000,
    crowd_devices=83,
)

MEDIUM = ExperimentScale(
    name="medium",
    n_frames=80,
    width=80,
    height=60,
    n_random_samples=400,
    max_iterations=5,
    max_samples_per_iteration=120,
    pool_size=20000,
    crowd_devices=83,
)

PAPER = ExperimentScale(
    name="paper",
    n_frames=400,
    width=640,
    height=480,
    n_random_samples=3000,
    max_iterations=6,
    max_samples_per_iteration=300,
    pool_size=100000,
    crowd_devices=83,
)


def make_runner(pipeline: str, scale: ExperimentScale, dataset_seed: int = 1, pipeline_seed: int = 0) -> SlamBenchRunner:
    """Build a :class:`SlamBenchRunner` matching the experiment scale."""
    kwargs: Dict[str, object] = {}
    if pipeline == "elasticfusion":
        # Fusion stride 2 keeps the surfel map (and the run time of a single
        # evaluation) manageable at DSE scale without changing the trends.
        kwargs["elasticfusion_kwargs"] = {"fusion_stride": 2}
    return SlamBenchRunner(
        pipeline,
        n_frames=scale.n_frames,
        width=scale.width,
        height=scale.height,
        dataset_seed=dataset_seed,
        pipeline_seed=pipeline_seed,
        **kwargs,
    )


__all__ = ["ExperimentScale", "SMOKE", "SMALL", "MEDIUM", "PAPER", "make_runner", "make_executor"]
