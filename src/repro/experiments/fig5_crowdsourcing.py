"""Figure 5: crowd-sourced speedups of the tuned configuration on 83 devices.

The best-runtime configuration from the ODROID-XU3 Pareto front and the
default configuration are run on every device of the (synthetic) mobile fleet;
the figure is the distribution of per-device speedups, which the paper reports
to range from 2x to more than 12x.  The harness also reports the cross-device
runtime correlation (Pearson/Spearman) underpinning the zero-shot transfer
argument.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.crowd.analysis import cross_device_correlation, speedup_histogram, speedup_statistics
from repro.crowd.app import run_crowd_experiment, tuned_config_from_run
from repro.crowd.database import CrowdDatabase
from repro.devices.catalog import ODROID_XU3
from repro.devices.mobile import make_mobile_fleet
from repro.experiments.common import SMALL, ExperimentScale, make_runner
from repro.experiments.fig3_kfusion_dse import run_fig3
from repro.slambench.runner import SlamBenchRunner
from repro.slambench.workloads import get_workload
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table


def run_fig5(
    scale: ExperimentScale = SMALL,
    seed: int = 7,
    tuned_config: Optional[Mapping[str, object]] = None,
    runner: Optional[SlamBenchRunner] = None,
    n_correlation_configs: int = 24,
    n_workers: Optional[int] = None,
    tuned_run_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Run the crowd-sourcing experiment.

    ``tuned_config`` is normally the best-runtime configuration of the
    ODROID-XU3 Pareto front (Fig. 3); ``tuned_run_dir`` reads it from a
    persisted Fig. 3 study run directory (the artifact a crowd frontend
    would consume); when both are omitted, a reduced scenario-driven Fig. 3
    run is performed first to obtain it.  ``n_workers`` (default: the
    scale's ``n_eval_workers``) runs fleet devices concurrently; results
    are order-deterministic either way.
    """
    workload = get_workload("kfusion")
    runner = runner if runner is not None else make_runner("kfusion", scale, dataset_seed=seed)
    if tuned_config is None and tuned_run_dir is not None:
        tuned_config = tuned_config_from_run(tuned_run_dir)
    if tuned_config is None:
        fig3 = run_fig3(platform="odroid-xu3", scale=scale, seed=seed, runner=runner)
        tuned_config = fig3["best_speed_config"]
        if tuned_config is None:
            raise RuntimeError("the Fig. 3 exploration produced no valid configuration")

    default_config = dict(workload.default_config())
    fleet = make_mobile_fleet(n_devices=scale.crowd_devices, seed=derive_seed(seed, "fleet"))
    database = CrowdDatabase()
    runs = run_crowd_experiment(
        runner,
        fleet,
        default_config,
        dict(tuned_config),
        n_frames=100,
        database=database,
        n_workers=scale.n_eval_workers if n_workers is None else int(n_workers),
    )

    stats = speedup_statistics(runs)
    histogram = speedup_histogram(runs)

    # Zero-shot transfer: rank correlation of per-configuration runtimes
    # between the ODROID-XU3 and a handful of fleet devices.
    space = workload.space()
    probe_configs = [dict(c) for c in space.sample(n_correlation_configs, rng=derive_seed(seed, "probe"))]
    probe_configs.append(default_config)
    correlations = []
    for device in fleet[:: max(len(fleet) // 5, 1)][:5]:
        corr = cross_device_correlation(runner, probe_configs, ODROID_XU3, device)
        correlations.append({"device": device.name, **corr})

    return {
        "experiment": "fig5_crowdsourcing",
        "scale": scale.name,
        "n_devices": len(runs),
        "tuned_config": dict(tuned_config),
        "speedups": [float(r.speedup) for r in runs],
        "device_names": [r.device.name for r in runs],
        "statistics": stats,
        "histogram": histogram,
        "cross_device_correlations": correlations,
        "n_database_records": len(database),
    }


def format_fig5(result: Dict[str, object]) -> str:
    """Plain-text rendering of the Fig. 5 speedup distribution."""
    lines: List[str] = []
    stats = result["statistics"]
    lines.append(
        f"Fig. 5 — crowd-sourced speedups of the ODROID-tuned configuration over the default "
        f"on {result['n_devices']} devices (scale: {result['scale']})"
    )
    lines.append(
        f"  speedup range {stats['min']:.2f}x .. {stats['max']:.2f}x, "
        f"median {stats['median']:.2f}x, {stats['fraction_at_least_2x'] * 100:.0f}% of devices at >= 2x "
        f"(paper: 2x .. >12x)"
    )
    rows = [[label, count] for label, count in result["histogram"]]
    lines.append(format_table(rows, headers=["speedup bin", "devices"], title="  Speedup histogram:"))
    corr_rows = [[c["device"], f"{c['pearson']:.3f}", f"{c['spearman']:.3f}"] for c in result["cross_device_correlations"]]
    lines.append(
        format_table(
            corr_rows,
            headers=["device", "Pearson", "Spearman"],
            title="  Cross-device runtime correlation vs ODROID-XU3 (zero-shot transfer):",
        )
    )
    return "\n".join(lines)


__all__ = ["run_fig5", "format_fig5"]
