"""Figure 4: ElasticFusion design-space exploration on the GTX 780 Ti desktop.

Reproduces the random-sampling vs active-learning comparison on the second,
"fundamentally different" application, together with the Section IV headline
numbers: the default configuration runs at about 45 FPS, the tuned
configurations improve runtime by about 1.5x while also improving accuracy,
and a separate configuration improves accuracy by about 2x over the default.

Like Fig. 3, the exploration is a declarative scenario executed through the
:class:`~repro.core.study.Study` front door.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.core.study import Study, StudyResult
from repro.devices.catalog import get_device
from repro.devices.model import DeviceModel
from repro.experiments.common import (
    SMALL,
    ExperimentScale,
    executor_spec,
    history_stats,
    make_runner,
    slambench_evaluator_spec,
)
from repro.slambench.parameters import ACCURACY_LIMIT_M
from repro.slambench.runner import SlamBenchRunner
from repro.slambench.workloads import get_workload
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table


def fig4_scenario(
    platform: str = "gtx-780ti",
    scale: ExperimentScale = SMALL,
    seed: int = 11,
    accuracy_limit_m: float = ACCURACY_LIMIT_M,
    acquisition: Union[str, Mapping, None] = None,
    n_workers: Optional[int] = None,
    overlap_fraction: Optional[float] = None,
) -> Dict[str, object]:
    """The Fig. 4 exploration as a plain scenario dict (JSON-serializable).

    ElasticFusion evaluations are heavier than KFusion ones, so the
    random-sampling budget is scaled the same way the paper scales it
    (2,400 vs 3,000 samples) and the per-iteration cap is halved.
    """
    search: Dict[str, object] = {
        "algorithm": "hypermapper",
        "n_random_samples": max(int(scale.n_random_samples * 0.8), 8),
        "max_iterations": scale.max_iterations,
        "pool_size": scale.pool_size,
        "max_samples_per_iteration": max(scale.max_samples_per_iteration // 2, 4),
    }
    if acquisition is not None:
        search["acquisition"] = acquisition
    return {
        "schema_version": 1,
        "name": f"fig4-elasticfusion-{platform}",
        "evaluator": slambench_evaluator_spec(
            "elasticfusion", platform, scale, dataset_seed=seed, accuracy_limit_m=accuracy_limit_m
        ),
        "search": search,
        "executor": executor_spec(scale, n_workers, overlap_fraction),
        "seed": derive_seed(seed, "fig4", platform),
    }


def fig4_sweep_spec(
    platforms: Sequence[str] = ("gtx-780ti", "quadro"),
    scale: ExperimentScale = SMALL,
    seed: int = 11,
    accuracy_limit_m: float = ACCURACY_LIMIT_M,
    max_concurrent: int = 2,
) -> Dict[str, object]:
    """The Fig. 4 campaign as one sweep spec over desktop GPUs.

    Mirrors :func:`repro.experiments.fig3_kfusion_dse.fig3_sweep_spec`: one
    base scenario, one explicit point per platform overriding
    ``evaluator.device`` and ``seed`` with exactly the values the standalone
    ``run_fig4`` calls use (per-point bit-identity).
    """
    return {
        "schema_version": 1,
        "name": "fig4-elasticfusion-sweep",
        "scheduler": {"max_concurrent_studies": max_concurrent},
        "base": fig4_scenario(platforms[0], scale, seed, accuracy_limit_m),
        "points": [
            {"evaluator.device": platform, "seed": derive_seed(seed, "fig4", platform)}
            for platform in platforms
        ],
    }


def run_fig4_device_sweep(
    sweep_dir: str,
    platforms: Sequence[str] = ("gtx-780ti", "quadro"),
    scale: ExperimentScale = SMALL,
    seed: int = 11,
    runner: Optional[SlamBenchRunner] = None,
    accuracy_limit_m: float = ACCURACY_LIMIT_M,
    max_concurrent: Optional[int] = None,
    resume: bool = False,
):
    """Run the ElasticFusion DSE on every platform through one sweep.

    A shared runner (one simulation cache) serves all device points; the
    cross-run comparison report lands in ``<sweep_dir>/comparison.json``.
    """
    from repro.core.sweep import run_sweep

    runner = (
        runner if runner is not None else make_runner("elasticfusion", scale, dataset_seed=seed)
    )
    spec = fig4_sweep_spec(platforms, scale, seed, accuracy_limit_m)
    return run_sweep(
        spec, sweep_dir, runner=runner, max_concurrent=max_concurrent, resume=resume
    )


def run_fig4(
    platform: str = "gtx-780ti",
    scale: ExperimentScale = SMALL,
    seed: int = 11,
    runner: Optional[SlamBenchRunner] = None,
    accuracy_limit_m: float = ACCURACY_LIMIT_M,
    acquisition: Union[str, Mapping, None] = None,
    n_workers: Optional[int] = None,
    overlap_fraction: Optional[float] = None,
    checkpoint_path: Optional[str] = None,
    resume_from: Optional[str] = None,
    run_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Run the ElasticFusion DSE and collect the Fig. 4 / Section IV statistics."""
    device: DeviceModel = get_device(platform)
    runner = runner if runner is not None else make_runner("elasticfusion", scale, dataset_seed=seed)
    scenario = fig4_scenario(
        platform, scale, seed, accuracy_limit_m, acquisition, n_workers, overlap_fraction
    )
    study = Study(scenario, runner=runner)
    result: StudyResult = study.run(
        run_dir=run_dir, resume_from=resume_from, checkpoint_path=checkpoint_path
    )

    workload = get_workload("elasticfusion")
    space = workload.space()
    history = result.history
    random_history = history.filter(source="random")
    stats = history_stats(result)

    default_config = workload.default_config()
    default_metrics = runner.evaluate(default_config, device)

    best_speed = result.best_by("runtime_s")
    best_accuracy = result.best_by("mean_ate_m")
    front = result.pareto

    speedup = default_metrics["runtime_s"] / best_speed.metrics["runtime_s"] if best_speed else float("nan")
    accuracy_gain_best_speed = (
        default_metrics["mean_ate_m"] / best_speed.metrics["mean_ate_m"] if best_speed else float("nan")
    )
    accuracy_gain = (
        default_metrics["mean_ate_m"] / best_accuracy.metrics["mean_ate_m"] if best_accuracy else float("nan")
    )
    speedup_best_accuracy = (
        default_metrics["runtime_s"] / best_accuracy.metrics["runtime_s"] if best_accuracy else float("nan")
    )

    return {
        "experiment": "fig4_elasticfusion_dse",
        "platform": device.name,
        "platform_key": platform,
        "scale": scale.name,
        "scenario": result.scenario.to_dict(),
        "space_cardinality": float(space.cardinality),
        "accuracy_limit_m": accuracy_limit_m,
        "n_random_samples": stats["n_random_samples"],
        "n_active_learning_samples": stats["n_active_learning_samples"],
        "n_active_learning_iterations": len(result.iterations),
        "samples_per_iteration": [r.n_new_samples for r in result.iterations],
        "n_valid_random": stats["n_valid_random"],
        "n_valid_active_learning": stats["n_valid_active_learning"],
        "n_pareto_points": len(front),
        "default_metrics": {k: float(v) for k, v in default_metrics.items()},
        "default_fps": float(default_metrics["fps"]),
        "best_speed_config": dict(best_speed.config) if best_speed else None,
        "best_speed_metrics": dict(best_speed.metrics) if best_speed else None,
        "best_speedup_over_default": float(speedup),
        "accuracy_gain_of_best_speed": float(accuracy_gain_best_speed),
        "best_accuracy_config": dict(best_accuracy.config) if best_accuracy else None,
        "best_accuracy_metrics": dict(best_accuracy.metrics) if best_accuracy else None,
        "best_accuracy_gain_over_default": float(accuracy_gain),
        "speedup_of_best_accuracy": float(speedup_best_accuracy),
        "random_front": [
            {"mean_ate_m": float(r.metrics["mean_ate_m"]), "runtime_s": float(r.metrics["runtime_s"])}
            for r in random_history.pareto_records()
        ],
        "active_learning_front": [
            {"mean_ate_m": float(r.metrics["mean_ate_m"]), "runtime_s": float(r.metrics["runtime_s"])}
            for r in front
        ],
        "pareto_records": [
            {"config": dict(r.config), "metrics": dict(r.metrics), "source": r.source} for r in front
        ],
        "iteration_reports": [r.to_dict() for r in result.iterations],
        "n_pipeline_simulations": runner.n_simulations,
        "engine": dict(result.engine_info),
        "run_dir": None if result.run_dir is None else str(result.run_dir),
    }


def format_fig4(result: Dict[str, object]) -> str:
    """Plain-text report mirroring Fig. 4 and the ElasticFusion headline numbers."""
    lines: List[str] = []
    lines.append(f"Fig. 4 — ElasticFusion DSE on {result['platform']} (scale: {result['scale']})")
    lines.append(
        f"  random sampling: {result['n_random_samples']} samples, {result['n_valid_random']} valid"
    )
    lines.append(
        f"  active learning: {result['n_active_learning_samples']} samples over "
        f"{result['n_active_learning_iterations']} iterations, {result['n_valid_active_learning']} valid"
    )
    default = result["default_metrics"]
    lines.append(
        f"  default configuration: {default['runtime_s'] * 1000:.1f} ms/frame "
        f"({result['default_fps']:.1f} FPS), mean ATE {default['mean_ate_m'] * 100:.2f} cm"
    )
    if result["best_speed_metrics"]:
        bs = result["best_speed_metrics"]
        lines.append(
            f"  best speed: {bs['runtime_s'] * 1000:.1f} ms/frame, mean ATE {bs['mean_ate_m'] * 100:.2f} cm "
            f"-> {result['best_speedup_over_default']:.2f}x faster, "
            f"{result['accuracy_gain_of_best_speed']:.2f}x more accurate than default"
        )
    if result["best_accuracy_metrics"]:
        ba = result["best_accuracy_metrics"]
        lines.append(
            f"  best accuracy: mean ATE {ba['mean_ate_m'] * 100:.2f} cm at {ba['runtime_s'] * 1000:.1f} ms/frame "
            f"-> {result['best_accuracy_gain_over_default']:.2f}x more accurate, "
            f"{result['speedup_of_best_accuracy']:.2f}x faster than default"
        )
    front = result["active_learning_front"]
    if front:
        rows = [[f"{p['runtime_s'] * 1000:.1f}", f"{p['mean_ate_m'] * 100:.2f}"] for p in front[:20]]
        lines.append(format_table(rows, headers=["runtime (ms/frame)", "mean ATE (cm)"], title="  Final Pareto front (first 20 points):"))
    return "\n".join(lines)


__all__ = [
    "fig4_scenario",
    "fig4_sweep_spec",
    "run_fig4",
    "run_fig4_device_sweep",
    "format_fig4",
]
