"""Experiment harnesses regenerating every table and figure of the paper.

One module per experiment:

* :mod:`repro.experiments.fig1_response_surface` — Fig. 1, the KFusion runtime
  response surface over (µ, ICP threshold),
* :mod:`repro.experiments.fig3_kfusion_dse` — Fig. 3(a)/(b), KFusion design
  space exploration on the ODROID-XU3 and ASUS T200TA,
* :mod:`repro.experiments.fig4_elasticfusion_dse` — Fig. 4, ElasticFusion DSE
  on the GTX 780 Ti,
* :mod:`repro.experiments.fig5_crowdsourcing` — Fig. 5, the 83-device
  crowd-sourcing speedup distribution,
* :mod:`repro.experiments.table1_pareto` — Table I, the ElasticFusion Pareto
  points,
* :mod:`repro.experiments.ablations` — additional ablations (search-strategy
  comparison, forest size sensitivity) referenced in DESIGN.md.

Every experiment takes an :class:`~repro.experiments.common.ExperimentScale`
so the same code runs at smoke-test, benchmark and paper scale.
"""

from repro.experiments.common import ExperimentScale, SMOKE, SMALL, MEDIUM, PAPER
from repro.experiments.fig1_response_surface import run_fig1, format_fig1
from repro.experiments.fig3_kfusion_dse import run_fig3, format_fig3
from repro.experiments.fig4_elasticfusion_dse import run_fig4, format_fig4
from repro.experiments.fig5_crowdsourcing import run_fig5, format_fig5
from repro.experiments.table1_pareto import run_table1, format_table1
from repro.experiments.ablations import run_search_strategy_ablation, run_forest_size_ablation

__all__ = [
    "ExperimentScale",
    "SMOKE",
    "SMALL",
    "MEDIUM",
    "PAPER",
    "run_fig1",
    "format_fig1",
    "run_fig3",
    "format_fig3",
    "run_fig4",
    "format_fig4",
    "run_fig5",
    "format_fig5",
    "run_table1",
    "format_table1",
    "run_search_strategy_ablation",
    "run_forest_size_ablation",
]
