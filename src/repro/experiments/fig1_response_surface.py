"""Figure 1: KFusion frame-runtime response surface over (µ, ICP threshold).

The paper shows that varying just two algorithmic parameters (µ and the ICP
threshold) while keeping everything else at the default produces a non-convex,
multi-modal and non-smooth runtime surface — the motivation for model-based
search instead of hand tuning.  This harness sweeps the same two parameters,
reports the surface and quantifies its non-convexity (number of local minima
along each axis) and relative spread.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.devices.catalog import ODROID_XU3
from repro.devices.model import DeviceModel
from repro.experiments.common import SMALL, ExperimentScale, make_runner
from repro.slambench.runner import SlamBenchRunner
from repro.slambench.workloads import get_workload
from repro.utils.tables import format_table


def _count_local_minima(values: np.ndarray) -> int:
    """Number of strict local minima along a 1-D slice."""
    count = 0
    for i in range(len(values)):
        left = values[i - 1] if i > 0 else np.inf
        right = values[i + 1] if i < len(values) - 1 else np.inf
        if values[i] < left and values[i] < right:
            count += 1
    return count


def run_fig1(
    scale: ExperimentScale = SMALL,
    device: DeviceModel = ODROID_XU3,
    runner: Optional[SlamBenchRunner] = None,
    seed: int = 1,
) -> Dict[str, object]:
    """Sweep (µ, ICP threshold) with all other parameters at their defaults.

    Returns a dictionary with the runtime surface (seconds per frame), the
    accuracy surface, the axes, and non-convexity statistics.
    """
    workload = get_workload("kfusion")
    runner = runner if runner is not None else make_runner("kfusion", scale, dataset_seed=seed)
    space = workload.space()
    mu_values = space["mu"].values()
    icp_values = space["icp_threshold"].values()
    default = dict(workload.default_config())

    runtime = np.zeros((len(mu_values), len(icp_values)))
    accuracy = np.zeros_like(runtime)
    for i, mu in enumerate(mu_values):
        for j, icp in enumerate(icp_values):
            config = dict(default, mu=mu, icp_threshold=icp)
            metrics = runner.evaluate(config, device)
            runtime[i, j] = metrics["runtime_s"]
            accuracy[i, j] = metrics["max_ate_m"]

    # Non-convexity indicators: local minima along every axis-aligned slice.
    minima_along_mu = sum(_count_local_minima(runtime[:, j]) for j in range(runtime.shape[1]))
    minima_along_icp = sum(_count_local_minima(runtime[i, :]) for i in range(runtime.shape[0]))
    return {
        "experiment": "fig1_response_surface",
        "scale": scale.name,
        "device": device.name,
        "mu_values": [float(v) for v in mu_values],
        "icp_threshold_values": [float(v) for v in icp_values],
        "runtime_s": runtime.tolist(),
        "max_ate_m": accuracy.tolist(),
        "runtime_min_s": float(runtime.min()),
        "runtime_max_s": float(runtime.max()),
        "runtime_spread": float(runtime.max() / max(runtime.min(), 1e-12)),
        "local_minima_along_mu": int(minima_along_mu),
        "local_minima_along_icp": int(minima_along_icp),
        "is_multimodal": bool(minima_along_mu + minima_along_icp > max(runtime.shape)),
        "n_evaluations": len(mu_values) * len(icp_values),
    }


def format_fig1(result: Dict[str, object]) -> str:
    """Plain-text rendering of the Fig. 1 surface (milliseconds per frame)."""
    mu_values: List[float] = result["mu_values"]  # type: ignore[assignment]
    icp_values: List[float] = result["icp_threshold_values"]  # type: ignore[assignment]
    runtime = np.asarray(result["runtime_s"])
    headers = ["mu \\ icp-thr"] + [f"{v:g}" for v in icp_values]
    rows = []
    for i, mu in enumerate(mu_values):
        rows.append([f"{mu:g}"] + [f"{runtime[i, j] * 1000:.1f}" for j in range(len(icp_values))])
    table = format_table(rows, headers=headers, title="Fig. 1 — KFusion frame runtime (ms) vs (mu, icp-threshold), other parameters at default")
    summary = (
        f"\nruntime spread max/min = {result['runtime_spread']:.2f}x, "
        f"local minima along mu slices = {result['local_minima_along_mu']}, "
        f"along icp-threshold slices = {result['local_minima_along_icp']} "
        f"(multi-modal: {result['is_multimodal']})"
    )
    return table + summary


__all__ = ["run_fig1", "format_fig1"]
